(* Hash-consed ROBDD with an ite-based apply. Node 0 = constant false,
   node 1 = constant true; every other node is (var, low, high) with
   low/high distinct and both branches reduced. *)

type node = { var : int; low : int; high : int }

type manager = {
  mutable nodes : node array;  (* indexed by id; ids 0/1 are sentinels *)
  mutable n_nodes : int;
  unique : (node, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

type t = { man : manager; root : int }

let sentinel = { var = max_int; low = -1; high = -1 }

let manager ?(size_hint = 1024) () =
  let m =
    {
      nodes = Array.make (max 2 size_hint) sentinel;
      n_nodes = 2;
      unique = Hashtbl.create size_hint;
      ite_cache = Hashtbl.create size_hint;
    }
  in
  m.nodes.(0) <- sentinel;
  m.nodes.(1) <- sentinel;
  m

let zero man = { man; root = 0 }
let one man = { man; root = 1 }

let mk man var low high =
  if low = high then low
  else begin
    let n = { var; low; high } in
    match Hashtbl.find_opt man.unique n with
    | Some id -> id
    | None ->
      let id = man.n_nodes in
      if id >= Array.length man.nodes then begin
        let bigger = Array.make (2 * Array.length man.nodes) sentinel in
        Array.blit man.nodes 0 bigger 0 man.n_nodes;
        man.nodes <- bigger
      end;
      man.nodes.(id) <- n;
      man.n_nodes <- id + 1;
      Hashtbl.replace man.unique n id;
      id
  end

let var_of man id = if id < 2 then max_int else man.nodes.(id).var

let low_of man id = man.nodes.(id).low

let high_of man id = man.nodes.(id).high

let rec ite_raw man f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    match Hashtbl.find_opt man.ite_cache (f, g, h) with
    | Some r -> r
    | None ->
      let top = min (var_of man f) (min (var_of man g) (var_of man h)) in
      let branch id side =
        if var_of man id = top then (if side then high_of man id else low_of man id) else id
      in
      let hi = ite_raw man (branch f true) (branch g true) (branch h true) in
      let lo = ite_raw man (branch f false) (branch g false) (branch h false) in
      let r = mk man top lo hi in
      Hashtbl.replace man.ite_cache (f, g, h) r;
      r
  end

let check_same a b = if a.man != b.man then invalid_arg "Bdd: mixed managers"

let var man i =
  if i < 0 then invalid_arg "Bdd.var";
  { man; root = mk man i 0 1 }

let nvar man i =
  if i < 0 then invalid_arg "Bdd.nvar";
  { man; root = mk man i 1 0 }

let ite man f g h =
  check_same f g;
  check_same g h;
  ignore man;
  { man = f.man; root = ite_raw f.man f.root g.root h.root }

let not_ man f = ite man f (zero f.man) (one f.man)

let and_ man f g = ite man f g (zero f.man)

let or_ man f g = ite man f (one f.man) g

let xor man f g = ite man f (not_ man g) g

let equal a b = a.man == b.man && a.root = b.root

let is_zero t = t.root = 0

let is_one t = t.root = 1

let eval t assignment =
  let rec go id =
    if id = 0 then false
    else if id = 1 then true
    else begin
      let n = t.man.nodes.(id) in
      if n.var >= Array.length assignment then invalid_arg "Bdd.eval: assignment too short";
      go (if assignment.(n.var) then n.high else n.low)
    end
  in
  go t.root

let node_count man t =
  ignore man;
  let seen = Hashtbl.create 64 in
  let rec go id =
    if id >= 2 && not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      go (low_of t.man id);
      go (high_of t.man id)
    end
  in
  go t.root;
  Hashtbl.length seen

let of_cube man c =
  let acc = ref (one man) in
  for i = Cube.num_inputs c - 1 downto 0 do
    match Cube.get c i with
    | Cube.Dc -> ()
    | Cube.One -> acc := and_ man (var man i) !acc
    | Cube.Zero -> acc := and_ man (nvar man i) !acc
  done;
  !acc

let of_cover_output man cover o =
  List.fold_left
    (fun acc c ->
      if Util.Bitvec.get (Cube.outputs c) o then or_ man acc (of_cube man c) else acc)
    (zero man) (Cover.cubes cover)

let of_cover man cover =
  Array.init (Cover.num_outputs cover) (fun o -> of_cover_output man cover o)

let equivalent_covers a b =
  Cover.num_inputs a = Cover.num_inputs b
  && Cover.num_outputs a = Cover.num_outputs b
  &&
  let man = manager () in
  let fa = of_cover man a and fb = of_cover man b in
  Array.for_all2 equal fa fb

let sat_count man t ~n_vars =
  let cache = Hashtbl.create 64 in
  ignore man;
  (* count over variables in [var_of id, n_vars) *)
  let rec go id from_var =
    if id = 0 then 0.0
    else if id = 1 then 2.0 ** float_of_int (n_vars - from_var)
    else begin
      let v = var_of t.man id in
      let skipped = 2.0 ** float_of_int (v - from_var) in
      let core =
        match Hashtbl.find_opt cache id with
        | Some c -> c
        | None ->
          let c = go (low_of t.man id) (v + 1) +. go (high_of t.man id) (v + 1) in
          Hashtbl.replace cache id c;
          c
      in
      skipped *. core
    end
  in
  go t.root 0

let any_sat t =
  let rec go id acc =
    if id = 1 then Some (List.rev acc)
    else if id = 0 then None
    else begin
      let n = t.man.nodes.(id) in
      match go n.high ((n.var, true) :: acc) with
      | Some r -> Some r
      | None -> go n.low ((n.var, false) :: acc)
    end
  in
  go t.root []
