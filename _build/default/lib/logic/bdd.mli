(** Reduced ordered binary decision diagrams.

    A second, scalable equivalence oracle: truth tables stop at ~20 inputs,
    BDDs handle the 17-input [t2]-class functions comfortably. Nodes are
    hash-consed in a shared manager, so semantic equality is pointer
    equality on node identifiers. Variable order is the natural input
    order. *)

type manager

type t
(** A BDD rooted in some manager. Only combine BDDs from the same
    manager. *)

val manager : ?size_hint:int -> unit -> manager

val zero : manager -> t

val one : manager -> t

val var : manager -> int -> t
(** [var m i] is the function "input [i]". *)

val nvar : manager -> int -> t
(** Complement of {!var}. *)

val not_ : manager -> t -> t

val and_ : manager -> t -> t -> t

val or_ : manager -> t -> t -> t

val xor : manager -> t -> t -> t

val ite : manager -> t -> t -> t -> t
(** If-then-else, the core operator. *)

val equal : t -> t -> bool
(** Semantic equivalence (constant time thanks to hash-consing). *)

val is_zero : t -> bool

val is_one : t -> bool

val eval : t -> bool array -> bool
(** Evaluate under an assignment (indexed by variable). *)

val node_count : manager -> t -> int
(** Nodes reachable from the root (a size measure). *)

val of_cube : manager -> Cube.t -> t
(** Input part of a cube (outputs ignored). *)

val of_cover_output : manager -> Cover.t -> int -> t
(** The function of one output of a cover. *)

val of_cover : manager -> Cover.t -> t array
(** All outputs. *)

val equivalent_covers : Cover.t -> Cover.t -> bool
(** BDD-based logical equivalence of two covers (same arities required;
    returns [false] on arity mismatch). *)

val sat_count : manager -> t -> n_vars:int -> float
(** Number of satisfying assignments over [n_vars] variables. *)

val any_sat : t -> (int * bool) list option
(** Some partial assignment reaching [one], or [None] for the zero BDD.
    Variables not mentioned are don't-cares. *)
