type t = {
  name : string;
  inputs : string array;
  outputs : string array;
  tables : (string * Cover.t * string array) list;
}

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* Logical lines: strip comments, join backslash continuations. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s in
  let rec join acc pending pending_line lineno = function
    | [] -> List.rev (match pending with Some p -> (pending_line, p) :: acc | None -> acc)
    | line :: rest ->
      let lineno = lineno + 1 in
      let line = strip line in
      let line = String.trim line in
      let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
      let body = if continued then String.sub line 0 (String.length line - 1) else line in
      let merged, merged_line =
        match pending with
        | Some p -> (p ^ " " ^ body, pending_line)
        | None -> (body, lineno)
      in
      if continued then join acc (Some merged) merged_line lineno rest
      else if String.trim merged = "" then join acc None 0 lineno rest
      else join ((merged_line, merged) :: acc) None 0 lineno rest
  in
  join [] None 0 0 raw

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse text =
  let lines = logical_lines text in
  let name = ref "" in
  let inputs = ref [] and outputs = ref [] in
  let tables = ref [] in
  let current = ref None in
  let finish_table () =
    match !current with
    | None -> ()
    | Some (lineno, signal, sigs, rows) ->
      let n_in = List.length sigs in
      let out1 = Util.Bitvec.of_list 1 [ 0 ] in
      let cube_of_row row =
        if String.length row <> n_in then fail lineno "row width %d, expected %d" (String.length row) n_in;
        let lits =
          List.init n_in (fun i ->
              match row.[i] with
              | '0' -> Cube.Zero
              | '1' -> Cube.One
              | '-' -> Cube.Dc
              | c -> fail lineno "bad plane character %C" c)
        in
        Cube.of_literals lits ~outs:out1
      in
      let cover = Cover.make ~n_in:(max n_in 0) ~n_out:1 (List.rev_map cube_of_row rows) in
      tables := (signal, cover, Array.of_list sigs) :: !tables;
      current := None
  in
  List.iter
    (fun (lineno, line) ->
      match words line with
      | [] -> ()
      | w :: rest when String.length w > 0 && w.[0] = '.' -> (
        finish_table ();
        match (w, rest) with
        | ".model", [ n ] -> name := n
        | ".model", _ -> fail lineno ".model needs one name"
        | ".inputs", sigs -> inputs := !inputs @ sigs
        | ".outputs", sigs -> outputs := !outputs @ sigs
        | ".names", [] -> fail lineno ".names needs at least an output signal"
        | ".names", sigs ->
          let rec split_last acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split_last (x :: acc) rest
            | [] -> assert false
          in
          let ins, out = split_last [] sigs in
          current := Some (lineno, out, ins, [])
        | ".end", _ -> ()
        | _, _ -> fail lineno "unsupported directive %s" w)
      | row -> (
        match (!current, row) with
        | Some (ln, signal, sigs, rows), [ plane; "1" ] ->
          current := Some (ln, signal, sigs, plane :: rows)
        | Some (ln, signal, sigs, rows), [ "1" ] when sigs = [] ->
          (* constant 1 *)
          current := Some (ln, signal, sigs, "" :: rows)
        | Some _, _ -> fail lineno "unsupported table row (only 1-terminated rows)"
        | None, _ -> fail lineno "table row outside .names"))
    lines;
  finish_table ();
  {
    name = !name;
    inputs = Array.of_list !inputs;
    outputs = Array.of_list !outputs;
    tables = List.rev !tables;
  }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_string t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf ".model %s\n" t.name;
  Printf.bprintf buf ".inputs %s\n" (String.concat " " (Array.to_list t.inputs));
  Printf.bprintf buf ".outputs %s\n" (String.concat " " (Array.to_list t.outputs));
  List.iter
    (fun (signal, cover, sigs) ->
      Printf.bprintf buf ".names %s %s\n" (String.concat " " (Array.to_list sigs)) signal;
      List.iter
        (fun c ->
          let n_in = Array.length sigs in
          let row =
            String.init n_in (fun i ->
                match Cube.get c i with Cube.Zero -> '0' | Cube.One -> '1' | Cube.Dc -> '-')
          in
          if n_in = 0 then Buffer.add_string buf "1\n"
          else Printf.bprintf buf "%s 1\n" row)
        (Cover.cubes cover))
    t.tables;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let of_cover ~name cover =
  let n_in = Cover.num_inputs cover and n_out = Cover.num_outputs cover in
  let inputs = Array.init n_in (Printf.sprintf "x%d") in
  let outputs = Array.init n_out (Printf.sprintf "y%d") in
  let tables =
    List.init n_out (fun o -> (outputs.(o), Cover.restrict_output cover o, inputs))
  in
  { name; inputs; outputs; tables }

let eval t pis =
  if Array.length pis <> Array.length t.inputs then invalid_arg "Blif.eval";
  let env = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.replace env n pis.(i)) t.inputs;
  List.iter
    (fun (signal, cover, sigs) ->
      let local =
        Array.map
          (fun s ->
            match Hashtbl.find_opt env s with
            | Some v -> v
            | None -> invalid_arg (Printf.sprintf "Blif.eval: %s used before definition" s))
          sigs
      in
      Hashtbl.replace env signal (Util.Bitvec.get (Cover.eval cover local) 0))
    t.tables;
  Array.map
    (fun s ->
      match Hashtbl.find_opt env s with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Blif.eval: undefined output %s" s))
    t.outputs

let to_cover t =
  let n_in = Array.length t.inputs in
  if n_in > 20 then invalid_arg "Blif.to_cover: too many inputs";
  let tt =
    Truth_table.of_fun ~n_in ~n_out:(Array.length t.outputs) (fun a o -> (eval t a).(o))
  in
  Truth_table.to_minterm_cover tt
