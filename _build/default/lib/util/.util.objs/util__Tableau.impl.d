lib/util/tableau.ml: Array Buffer List Printf String
