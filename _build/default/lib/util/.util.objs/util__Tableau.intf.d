lib/util/tableau.mli:
