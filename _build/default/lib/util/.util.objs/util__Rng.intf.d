lib/util/rng.mli:
