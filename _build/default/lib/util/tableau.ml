type row = Cells of string list | Rule

type t = { headers : string list; ncols : int; mutable rows : row list }

let create headers = { headers; ncols = List.length headers; rows = [] }

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Tableau.add_row: too many cells";
  let padded = cells @ List.init (t.ncols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Rule -> ()
    | Cells cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let pad i s =
    Buffer.add_string buf s;
    Buffer.add_string buf (String.make (widths.(i) - String.length s) ' ')
  in
  let line cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        pad i c)
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  line t.headers;
  rule ();
  List.iter (function Rule -> rule () | Cells cells -> line cells) rows;
  Buffer.contents buf

let to_csv t =
  let quote cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
      let buf = Buffer.create (String.length cell + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
        cell;
      Buffer.add_char buf '"';
      Buffer.contents buf
    end
    else cell
  in
  let line cells = String.concat "," (List.map quote cells) ^ "\n" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  List.iter
    (function Rule -> () | Cells cells -> Buffer.add_string buf (line cells))
    (List.rev t.rows);
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
    print_newline ();
    print_endline s;
    print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

let cell_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ' ';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cell_float ?(dec = 2) x = Printf.sprintf "%.*f" dec x

let cell_pct x = Printf.sprintf "%.1f%%" (100. *. x)
