let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let median = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let percentile p = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let ratio a b = if b = 0. then 0. else a /. b

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  match xs with
  | [] -> { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; median = 0. }
  | _ ->
    let lo, hi = min_max xs in
    {
      n = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = lo;
      max = hi;
      median = median xs;
    }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n s.mean s.stddev
    s.min s.median s.max
