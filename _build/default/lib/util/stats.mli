(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. for fewer than two samples. *)

val median : float list -> float
(** Median (average of middle two for even length); 0. on the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest sample. Raises [Invalid_argument] on empty input. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0. when [b = 0.]. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary

val pp_summary : Format.formatter -> summary -> unit
