(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic parts of the library (synthetic benchmark generation,
    placement annealing, defect injection) draw from this generator so that
    every experiment is reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator, useful for giving sub-experiments their own streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
