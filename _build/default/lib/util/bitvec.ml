type t = { len : int; words : Bytes.t }

(* Bits are stored little-endian within bytes: bit [i] lives in byte [i/8],
   position [i mod 8]. Unused padding bits in the last byte stay zero, which
   lets equality/compare/popcount work bytewise. *)

let nbytes len = (len + 7) / 8

let create len =
  assert (len >= 0);
  { len; words = Bytes.make (nbytes len) '\000' }

let length t = t.len

let copy t = { len = t.len; words = Bytes.copy t.words }

let get t i =
  assert (i >= 0 && i < t.len);
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i b =
  assert (i >= 0 && i < t.len);
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte' = if b then byte lor mask else byte land lnot mask in
  Bytes.set t.words (i lsr 3) (Char.chr (byte' land 0xff))

let clear_padding t =
  let nb = nbytes t.len in
  if nb > 0 && t.len land 7 <> 0 then begin
    let keep = (1 lsl (t.len land 7)) - 1 in
    let last = Char.code (Bytes.get t.words (nb - 1)) in
    Bytes.set t.words (nb - 1) (Char.chr (last land keep))
  end

let set_all t b =
  Bytes.fill t.words 0 (Bytes.length t.words) (if b then '\255' else '\000');
  if b then clear_padding t

let create_full len =
  let t = create len in
  set_all t true;
  t

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let pop_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let is_empty t =
  let rec go i = i >= Bytes.length t.words || (Bytes.get t.words i = '\000' && go (i + 1)) in
  go 0

let is_full t = pop_count t = t.len

let equal a b = a.len = b.len && Bytes.equal a.words b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.words b.words

let map2 f a b =
  assert (a.len = b.len);
  let r = create a.len in
  for i = 0 to Bytes.length a.words - 1 do
    let x = Char.code (Bytes.get a.words i) and y = Char.code (Bytes.get b.words i) in
    Bytes.set r.words i (Char.chr (f x y land 0xff))
  done;
  r

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement a =
  let r = map2 (fun x _ -> lnot x) a a in
  clear_padding r;
  r

let subset a b =
  assert (a.len = b.len);
  let rec go i =
    i >= Bytes.length a.words
    || (Char.code (Bytes.get a.words i) land lnot (Char.code (Bytes.get b.words i)) = 0
        && go (i + 1))
  in
  go 0

let disjoint a b =
  assert (a.len = b.len);
  let rec go i =
    i >= Bytes.length a.words
    || (Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i) = 0 && go (i + 1))
  in
  go 0

let union_inplace a b =
  assert (a.len = b.len);
  for i = 0 to Bytes.length a.words - 1 do
    let x = Char.code (Bytes.get a.words i) lor Char.code (Bytes.get b.words i) in
    Bytes.set a.words i (Char.chr (x land 0xff))
  done

let iter_set f t =
  for i = 0 to t.len - 1 do
    if get t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

let of_list len indices =
  let t = create len in
  List.iter (fun i -> set t i true) indices;
  t

let pp fmt t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char fmt (if get t i then '1' else '0')
  done

let hash t = Hashtbl.hash (t.len, Bytes.to_string t.words)
