(** ASCII table rendering for benchmark/experiment reports.

    A tableau is built row by row; columns are sized to the widest cell and
    rendered with a header separator, in the style of the paper's tables. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render the whole table, trailing newline included. *)

val to_csv : t -> string
(** Comma-separated rendering (header first, rules skipped); cells
    containing commas or quotes are quoted per RFC 4180. *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the table (preceded by an underlined title when
    given) to stdout. *)

val cell_int : int -> string
(** Thousands-separated integer cell, e.g. [34 960]. *)

val cell_float : ?dec:int -> float -> string
(** Fixed-point float cell, default 2 decimals. *)

val cell_pct : float -> string
(** Percentage cell with one decimal, e.g. [44.9%] for input [0.449]. *)
