(** Fixed-length mutable bit vectors.

    Used for output parts of multi-output cubes, defect maps, and
    routing-resource occupancy. Indices are 0-based; all operations on two
    vectors require equal lengths. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of length [n]. *)

val create_full : int -> t
(** [create_full n] is an all-one vector of length [n]. *)

val length : t -> int

val copy : t -> t

val get : t -> int -> bool

val set : t -> int -> bool -> unit

val set_all : t -> bool -> unit

val pop_count : t -> int
(** Number of set bits. *)

val is_empty : t -> bool
(** [true] iff no bit is set. *)

val is_full : t -> bool
(** [true] iff every bit is set. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order, consistent with {!equal}. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] has the bits of [a] not in [b]. *)

val complement : t -> t

val subset : t -> t -> bool
(** [subset a b] iff every bit of [a] is set in [b]. *)

val disjoint : t -> t -> bool

val union_inplace : t -> t -> unit
(** [union_inplace a b] sets [a := a ∪ b]. *)

val iter_set : (int -> unit) -> t -> unit
(** Iterate over indices of set bits, ascending. *)

val to_list : t -> int list
(** Indices of set bits, ascending. *)

val of_list : int -> int list -> t
(** [of_list n indices] is a vector of length [n] with the given bits set. *)

val pp : Format.formatter -> t -> unit
(** Prints as a 0/1 string, index 0 leftmost. *)

val hash : t -> int
