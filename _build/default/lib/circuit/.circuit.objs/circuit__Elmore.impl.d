lib/circuit/elmore.ml: Array List
