lib/circuit/vcd.mli: Netlist Transient
