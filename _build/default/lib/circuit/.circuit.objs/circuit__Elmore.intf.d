lib/circuit/elmore.mli:
