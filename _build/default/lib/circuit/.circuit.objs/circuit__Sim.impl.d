lib/circuit/sim.ml: Array Device List Netlist Value
