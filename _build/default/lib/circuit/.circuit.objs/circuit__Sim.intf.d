lib/circuit/sim.mli: Netlist Value
