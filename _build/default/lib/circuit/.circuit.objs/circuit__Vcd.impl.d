lib/circuit/vcd.ml: Buffer Char Float List Printf Transient
