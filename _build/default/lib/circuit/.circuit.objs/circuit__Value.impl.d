lib/circuit/value.ml: Format
