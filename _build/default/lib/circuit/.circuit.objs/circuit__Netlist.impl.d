lib/circuit/netlist.ml: Array Device Fun List
