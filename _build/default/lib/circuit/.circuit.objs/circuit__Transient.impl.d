lib/circuit/transient.ml: Array Device Float Hashtbl List Netlist
