lib/circuit/value.mli: Format
