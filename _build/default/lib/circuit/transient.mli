(** Transient (time-domain) simulation of CNFET networks.

    A lightweight nodal solver: every net carries a capacitance to ground,
    rails and driven inputs are ideal voltage sources, and each ambipolar
    device contributes a current between source and drain from the
    analytic I–V model ({!Device.Ambipolar.drain_current}), with the
    conducting terminal roles chosen by the instantaneous voltages.
    Integration is forward Euler with a caller-chosen timestep (stability
    needs [dt ≪ R_on·C]).

    This is the waveform-level companion to the switch-level {!Sim}: it
    shows the actual pre-charge and evaluation transients of dynamic GNOR
    logic and yields measured delays to compare against Elmore
    estimates. *)

type t

val create : ?default_capacitance:float -> Netlist.t -> t
(** Every net gets [default_capacitance] (default: 4 × the device gate
    capacitance) except the rails. *)

val set_capacitance : t -> Netlist.net -> float -> unit

val drive : t -> Netlist.net -> float -> unit
(** Pin a net to a voltage from now on. *)

val release : t -> Netlist.net -> unit
(** Stop driving; the net keeps its charge and floats. *)

val voltage : t -> Netlist.net -> float

val time : t -> float

val step : t -> dt:float -> unit
(** Advance one Euler step. *)

val run : ?dt:float -> t -> until:float -> unit
(** Step until [time t >= until] (default [dt] = 0.05 ps). *)

val record : t -> Netlist.net -> unit
(** Start recording a waveform for this net (samples at every step). *)

val waveform : t -> Netlist.net -> (float * float) list
(** Recorded (time, voltage) samples, oldest first. *)

val crossing_time : t -> Netlist.net -> level:float -> rising:bool -> float option
(** First recorded instant the waveform crosses [level] in the given
    direction. *)
