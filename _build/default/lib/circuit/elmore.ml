type node = int

type info = { parent : int; resistance : float; mutable capacitance : float }

type t = { driver_resistance : float; mutable nodes : info array; mutable n : int }

let create ~driver_resistance =
  {
    driver_resistance;
    nodes = Array.make 16 { parent = -1; resistance = 0.0; capacitance = 0.0 };
    n = 1;
  }

let root _ = 0

let add_node t ~parent ~resistance ~capacitance =
  if parent < 0 || parent >= t.n then invalid_arg "Elmore.add_node";
  let id = t.n in
  if id >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  t.nodes.(id) <- { parent; resistance; capacitance };
  t.n <- id + 1;
  id

let add_capacitance t node c =
  if node < 0 || node >= t.n then invalid_arg "Elmore.add_capacitance";
  let info = t.nodes.(node) in
  info.capacitance <- info.capacitance +. c

let path_to_root t node =
  let rec go acc i = if i <= 0 then acc else go (i :: acc) t.nodes.(i).parent in
  go [] node

let delay t target =
  if target < 0 || target >= t.n then invalid_arg "Elmore.delay";
  let target_path = path_to_root t target in
  let on_target_path = Array.make t.n false in
  on_target_path.(0) <- true;
  List.iter (fun i -> on_target_path.(i) <- true) target_path;
  (* Shared resistance between the root→k path and the root→target path:
     sum of branch resistances of path(k) nodes that lie on path(target),
     plus the driver resistance. *)
  let total = ref 0.0 in
  for k = 0 to t.n - 1 do
    let ck = t.nodes.(k).capacitance in
    if ck > 0.0 then begin
      let shared = ref t.driver_resistance in
      List.iter
        (fun i -> if on_target_path.(i) then shared := !shared +. t.nodes.(i).resistance)
        (path_to_root t k);
      total := !total +. (!shared *. ck)
    end
  done;
  !total

let max_delay t =
  let best = ref 0.0 in
  for k = 0 to t.n - 1 do
    let d = delay t k in
    if d > !best then best := d
  done;
  !best

let total_capacitance t =
  let sum = ref 0.0 in
  for k = 0 to t.n - 1 do
    sum := !sum +. t.nodes.(k).capacitance
  done;
  !sum

let wire ~driver_resistance ~r_per_seg ~c_per_seg ~segments ~load =
  let t = create ~driver_resistance in
  let rec build parent k =
    if k = 0 then parent
    else
      let child = add_node t ~parent ~resistance:r_per_seg ~capacitance:c_per_seg in
      build child (k - 1)
  in
  let last = build (root t) segments in
  add_capacitance t last load;
  delay t last
