(** Switch-level signal values.

    A net carries a logic level together with a strength:
    {ul
    {- [Supply] — tied to a rail or a primary input;}
    {- [Driven] — reached from a supply through conducting switches;}
    {- [Charged] — retained on parasitic capacitance (dynamic nodes);}
    {- [Floating] — never driven or charged.}}

    Merging two values (two paths meeting at a net) keeps the stronger; at
    equal strength, differing levels give [X] (conflict / charge
    sharing). *)

type level = L0 | L1 | X

type strength = Floating | Charged | Driven | Supply

type t = { level : level; strength : strength }

val floating : t
val supply0 : t
val supply1 : t
val driven : level -> t
val charged : level -> t

val merge : t -> t -> t
(** Strength-resolved merge as described above. *)

val weaken : t -> t
(** End-of-phase decay: [Driven]/[Supply] values become [Charged] (what a
    dynamic node retains); [Charged]/[Floating] unchanged. *)

val to_bool : t -> bool option
(** [Some] for a definite 0/1 level, [None] for [X] or [Floating]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
