(** Switch-level netlists of ambipolar CNFETs.

    A netlist owns a set of nets and a set of devices. Every device is an
    ambipolar CNFET whose polarity state is programmable after
    construction (this is how PLAs are configured). Conventional n- or
    p-FETs are ambipolar devices whose polarity is fixed at build time. *)

type net
(** Abstract net handle. *)

type device
(** Abstract device handle. *)

type t

val create : ?params:Device.Ambipolar.params -> unit -> t

val params : t -> Device.Ambipolar.params

val vdd : t -> net
(** The supply rail (always present). *)

val gnd : t -> net
(** The ground rail (always present). *)

val add_net : t -> string -> net
(** Fresh named net. *)

val net_name : t -> net -> string

val net_count : t -> int

val device_count : t -> int

val add_device : t -> name:string -> gate:net -> src:net -> drn:net -> polarity:Device.Ambipolar.polarity -> device
(** Add an ambipolar CNFET. [polarity] is its initial programmed state. *)

val set_polarity : t -> device -> Device.Ambipolar.polarity -> unit
(** Reprogram a device (models storing a new charge on its PG). *)

val polarity : t -> device -> Device.Ambipolar.polarity

val device_name : t -> device -> string

val devices : t -> device list

val device_terminals : t -> device -> net * net * net
(** [(gate, src, drn)]. *)

val net_of_int : t -> int -> net
(** Recover a net handle from {!net_index} (must be in range). *)

val net_index : net -> int

val device_index : device -> int
