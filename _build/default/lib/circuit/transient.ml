module A = Device.Ambipolar

type t = {
  nl : Netlist.t;
  prm : A.params;
  mutable v : float array;
  mutable cap : float array;
  mutable driven : float option array;
  mutable now : float;
  recording : (int, (float * float) list ref) Hashtbl.t;
}

let create ?default_capacitance nl =
  let prm = Netlist.params nl in
  let c0 =
    match default_capacitance with Some c -> c | None -> 4.0 *. prm.A.c_gate
  in
  let n = Netlist.net_count nl in
  let t =
    {
      nl;
      prm;
      v = Array.make n 0.0;
      cap = Array.make n c0;
      driven = Array.make n None;
      now = 0.0;
      recording = Hashtbl.create 8;
    }
  in
  t.driven.(Netlist.net_index (Netlist.vdd nl)) <- Some prm.A.vdd;
  t.driven.(Netlist.net_index (Netlist.gnd nl)) <- Some 0.0;
  t.v.(Netlist.net_index (Netlist.vdd nl)) <- prm.A.vdd;
  t

let sync t =
  let n = Netlist.net_count t.nl in
  if n > Array.length t.v then begin
    let grow a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.v <- grow t.v 0.0;
    t.cap <- grow t.cap (4.0 *. t.prm.A.c_gate);
    t.driven <- grow t.driven None
  end

let set_capacitance t net c =
  sync t;
  t.cap.(Netlist.net_index net) <- c

let drive t net volts =
  sync t;
  let i = Netlist.net_index net in
  t.driven.(i) <- Some volts;
  t.v.(i) <- volts

let release t net =
  sync t;
  t.driven.(Netlist.net_index net) <- None

let voltage t net =
  sync t;
  t.v.(Netlist.net_index net)

let time t = t.now

let step t ~dt =
  sync t;
  let n = Array.length t.v in
  let inflow = Array.make n 0.0 in
  List.iter
    (fun d ->
      let gate, src, drn = Netlist.device_terminals t.nl d in
      let gi = Netlist.net_index gate
      and si = Netlist.net_index src
      and di = Netlist.net_index drn in
      let pol = Netlist.polarity t.nl d in
      let vs = t.v.(si) and vd = t.v.(di) in
      if Float.abs (vd -. vs) > 1e-9 then begin
        (* current conventionally flows from the higher to the lower node *)
        let i =
          match pol with
          | A.Off_state -> 0.0
          | A.N_type ->
            let v_source = Float.min vs vd in
            let vgs = t.v.(gi) -. v_source in
            Float.abs (A.drain_current t.prm A.N_type ~vgs ~vds:(Float.abs (vd -. vs)))
          | A.P_type ->
            let v_source = Float.max vs vd in
            let vgs = t.v.(gi) -. v_source +. t.prm.A.vdd in
            Float.abs (A.drain_current t.prm A.P_type ~vgs ~vds:(Float.abs (vd -. vs)))
        in
        if vs > vd then begin
          inflow.(di) <- inflow.(di) +. i;
          inflow.(si) <- inflow.(si) -. i
        end
        else begin
          inflow.(si) <- inflow.(si) +. i;
          inflow.(di) <- inflow.(di) -. i
        end
      end)
    (Netlist.devices t.nl);
  for i = 0 to n - 1 do
    match t.driven.(i) with
    | Some v -> t.v.(i) <- v
    | None ->
      let dv = dt *. inflow.(i) /. t.cap.(i) in
      (* clamp to the rails: the analytic model has no body diodes *)
      t.v.(i) <- Float.max 0.0 (Float.min t.prm.A.vdd (t.v.(i) +. dv))
  done;
  t.now <- t.now +. dt;
  Hashtbl.iter
    (fun i samples -> samples := (t.now, t.v.(i)) :: !samples)
    t.recording

let run ?(dt = 0.05e-12) t ~until =
  while t.now < until do
    step t ~dt
  done

let record t net =
  sync t;
  let i = Netlist.net_index net in
  if not (Hashtbl.mem t.recording i) then Hashtbl.replace t.recording i (ref [])

let waveform t net =
  match Hashtbl.find_opt t.recording (Netlist.net_index net) with
  | Some samples -> List.rev !samples
  | None -> []

let crossing_time t net ~level ~rising =
  let rec scan = function
    | (_, v0) :: ((time1, v1) :: _ as rest) ->
      let crossed = if rising then v0 < level && v1 >= level else v0 > level && v1 <= level in
      if crossed then Some time1 else scan rest
    | _ -> None
  in
  scan (waveform t net)
