type level = L0 | L1 | X

type strength = Floating | Charged | Driven | Supply

type t = { level : level; strength : strength }

let floating = { level = X; strength = Floating }
let supply0 = { level = L0; strength = Supply }
let supply1 = { level = L1; strength = Supply }
let driven level = { level; strength = Driven }
let charged level = { level; strength = Charged }

let strength_rank = function Floating -> 0 | Charged -> 1 | Driven -> 2 | Supply -> 3

let merge a b =
  let ra = strength_rank a.strength and rb = strength_rank b.strength in
  if ra > rb then a
  else if rb > ra then b
  else if a.strength = Floating then a
  else if a.level = b.level then a
  else { level = X; strength = a.strength }

let weaken v =
  match v.strength with
  | Driven | Supply -> { v with strength = Charged }
  | Charged | Floating -> v

let to_bool v =
  match (v.strength, v.level) with
  | Floating, _ -> None
  | _, L0 -> Some false
  | _, L1 -> Some true
  | _, X -> None

let equal a b = a.level = b.level && a.strength = b.strength

let pp fmt v =
  let l = match v.level with L0 -> "0" | L1 -> "1" | X -> "X" in
  let s =
    match v.strength with Floating -> "z" | Charged -> "c" | Driven -> "d" | Supply -> "s"
  in
  Format.fprintf fmt "%s%s" l s
