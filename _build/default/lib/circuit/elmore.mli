(** Elmore delay on RC trees.

    The standard first-order interconnect timing model: for a tree rooted
    at the driver, the delay to node [i] is [Σ_k R(path ∩ path_k) · C_k],
    i.e. each node's capacitance weighted by the resistance shared between
    its path and the target's path. Used by the FPGA timing analyzer and
    by the PLA word-line/bit-line delay estimates. *)

type node
(** Abstract node handle; the root is created by {!create}. *)

type t

val create : driver_resistance:float -> t
(** Tree with only the root. The driver resistance is in series with the
    whole tree. *)

val root : t -> node

val add_node : t -> parent:node -> resistance:float -> capacitance:float -> node
(** Attach a child through a branch of the given resistance, with the given
    grounded capacitance at the new node. *)

val add_capacitance : t -> node -> float -> unit
(** Additional load at a node (e.g. a fanout gate). *)

val delay : t -> node -> float
(** Elmore delay (seconds) from the driver input to the node. *)

val max_delay : t -> float
(** Largest Elmore delay over all nodes. *)

val total_capacitance : t -> float

val wire : driver_resistance:float -> r_per_seg:float -> c_per_seg:float -> segments:int -> load:float -> float
(** Convenience: Elmore delay of a uniform RC line of [segments] sections
    with a lumped [load] at the far end. *)
