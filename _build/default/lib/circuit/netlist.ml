type net = int

type device = int

type dev = {
  dname : string;
  gate : net;
  src : net;
  drn : net;
  mutable pol : Device.Ambipolar.polarity;
}

(* Growable arrays keep net/device lookup O(1); simulation sweeps the whole
   device table every relaxation pass. *)
type t = {
  prm : Device.Ambipolar.params;
  mutable names : string array;
  mutable n_nets : int;
  mutable devs : dev option array;
  mutable n_devs : int;
}

let dummy_name = ""

let create ?(params = Device.Ambipolar.default) () =
  let names = Array.make 16 dummy_name in
  names.(0) <- "VDD";
  names.(1) <- "GND";
  { prm = params; names; n_nets = 2; devs = Array.make 16 None; n_devs = 0 }

let params t = t.prm

let vdd _ = 0
let gnd _ = 1

let grow arr len fill =
  if len < Array.length arr then arr
  else begin
    let bigger = Array.make (2 * Array.length arr) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let add_net t name =
  let id = t.n_nets in
  t.names <- grow t.names id dummy_name;
  t.names.(id) <- name;
  t.n_nets <- id + 1;
  id

let net_name t n =
  assert (n >= 0 && n < t.n_nets);
  t.names.(n)

let net_count t = t.n_nets

let device_count t = t.n_devs

let add_device t ~name ~gate ~src ~drn ~polarity =
  let id = t.n_devs in
  t.devs <- grow t.devs id None;
  t.devs.(id) <- Some { dname = name; gate; src; drn; pol = polarity };
  t.n_devs <- id + 1;
  id

let get_dev t d =
  assert (d >= 0 && d < t.n_devs);
  match t.devs.(d) with Some dv -> dv | None -> assert false

let set_polarity t d p = (get_dev t d).pol <- p

let polarity t d = (get_dev t d).pol

let device_name t d = (get_dev t d).dname

let devices t = List.init t.n_devs Fun.id

let device_terminals t d =
  let dv = get_dev t d in
  (dv.gate, dv.src, dv.drn)

let net_of_int t i =
  if i < 0 || i >= t.n_nets then invalid_arg "Netlist.net_of_int";
  i

let net_index n = n

let device_index d = d
