module Tt = Logic.Truth_table

let count_ones a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a

let bits_needed n =
  let rec go k = if 1 lsl k > n then k else go (k + 1) in
  go 1

let of_fun ~n_in ~n_out f = Tt.to_minterm_cover (Tt.of_fun ~n_in ~n_out f)

let rd ~n =
  if n < 2 || n > 12 then invalid_arg "Generators.rd";
  let n_out = bits_needed n in
  of_fun ~n_in:n ~n_out (fun a o -> (count_ones a lsr o) land 1 = 1)

let xor_n n =
  if n < 1 || n > 14 then invalid_arg "Generators.xor_n";
  of_fun ~n_in:n ~n_out:1 (fun a _ -> count_ones a mod 2 = 1)

let majority n =
  if n < 1 || n mod 2 = 0 || n > 13 then invalid_arg "Generators.majority";
  of_fun ~n_in:n ~n_out:1 (fun a _ -> 2 * count_ones a > n)

let operand a lo bits =
  let v = ref 0 in
  for k = bits - 1 downto 0 do
    v := (2 * !v) + if a.(lo + k) then 1 else 0
  done;
  !v

let adder ~bits =
  if bits < 1 || bits > 6 then invalid_arg "Generators.adder";
  of_fun ~n_in:(2 * bits) ~n_out:(bits + 1) (fun a o ->
      let sum = operand a 0 bits + operand a bits bits in
      (sum lsr o) land 1 = 1)

let comparator ~bits =
  if bits < 1 || bits > 7 then invalid_arg "Generators.comparator";
  of_fun ~n_in:(2 * bits) ~n_out:3 (fun a o ->
      let x = operand a 0 bits and y = operand a bits bits in
      match o with 0 -> x < y | 1 -> x = y | _ -> x > y)

let decoder ~bits =
  if bits < 1 || bits > 6 then invalid_arg "Generators.decoder";
  of_fun ~n_in:bits ~n_out:(1 lsl bits) (fun a o -> operand a 0 bits = o)

let mux ~select_bits =
  if select_bits < 1 || select_bits > 3 then invalid_arg "Generators.mux";
  let n_data = 1 lsl select_bits in
  of_fun ~n_in:(select_bits + n_data) ~n_out:1 (fun a _ ->
      a.(select_bits + operand a 0 select_bits))

let priority_encoder ~bits =
  if bits < 1 || bits > 4 then invalid_arg "Generators.priority_encoder";
  let n_req = 1 lsl bits in
  of_fun ~n_in:n_req ~n_out:(bits + 1) (fun a o ->
      let rec first i = if i >= n_req then None else if a.(i) then Some i else first (i + 1) in
      match first 0 with
      | None -> false
      | Some idx -> if o = bits then true else (idx lsr o) land 1 = 1)

let gray ~bits =
  if bits < 1 || bits > 10 then invalid_arg "Generators.gray";
  of_fun ~n_in:bits ~n_out:bits (fun a o ->
      let v = operand a 0 bits in
      let g = v lxor (v lsr 1) in
      (g lsr o) land 1 = 1)

(* Segment patterns for digits 0-9: bit k of the entry drives segment
   'a'+k (standard seven-segment encoding). *)
let seven_seg_patterns =
  [| 0x3F; 0x06; 0x5B; 0x4F; 0x66; 0x6D; 0x7D; 0x07; 0x7F; 0x6F |]

let bcd7seg () =
  of_fun ~n_in:4 ~n_out:7 (fun a o ->
      let d = operand a 0 4 in
      d <= 9 && (seven_seg_patterns.(d) lsr o) land 1 = 1)

let alu_slice () =
  of_fun ~n_in:6 ~n_out:3 (fun a o ->
      let x = operand a 0 2 and y = operand a 2 2 and op = operand a 4 2 in
      let result, carry =
        match op with
        | 0 ->
          let s = x + y in
          (s land 3, s lsr 2)
        | 1 ->
          let s = x - y in
          (s land 3, if x < y then 1 else 0)
        | 2 -> (x land y, 0)
        | _ -> (x lxor y, 0)
      in
      if o = 2 then carry = 1 else (result lsr o) land 1 = 1)

let all =
  [
    ("rd53", rd ~n:5);
    ("rd73", rd ~n:7);
    ("xor5", xor_n 5);
    ("maj5", majority 5);
    ("add3", adder ~bits:3);
    ("cmp3", comparator ~bits:3);
    ("dec4", decoder ~bits:4);
    ("mux2", mux ~select_bits:2);
    ("pri3", priority_encoder ~bits:3);
    ("gray4", gray ~bits:4);
    ("bcd7seg", bcd7seg ());
    ("alu2", alu_slice ());
  ]
