(** Recorded MCNC benchmark profiles (Yang, MCNC tech report 1991/2001).

    The proprietary MCNC [.pla] files are not redistributable, but Table 1
    of the paper is a closed-form function of each benchmark's
    (inputs, outputs, espresso product count) profile — the published
    profiles below reproduce the paper's numbers exactly (verified in
    DESIGN.md §2). For end-to-end pipeline runs use
    {!Synthetic.with_profile}, which manufactures a function with the same
    profile. *)

type t = {
  name : string;
  n_in : int;
  n_out : int;
  n_products : int;  (** after two-level minimization *)
}

val max46 : t
(** 9 inputs, 1 output, 46 products. *)

val apla : t
(** 10 inputs, 12 outputs, 25 products. *)

val t2 : t
(** 17 inputs, 16 outputs, 52 products. *)

val table1 : t list
(** The paper's Table 1 set, in row order. *)

val find : string -> t option
