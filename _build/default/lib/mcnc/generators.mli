(** Exactly-specified benchmark function families.

    Classic two-level benchmark shapes generated from first principles
    (not recalled from data files), so every function here is exact by
    construction and usable as a minimizer test oracle. *)

val rd : n:int -> Logic.Cover.t
(** "rdXY"-style rate detector: [n] inputs, [⌈log2 (n+1)⌉] outputs giving
    the binary count of ones (rd53 = [rd ~n:5], rd73 = [rd ~n:7]). *)

val xor_n : int -> Logic.Cover.t
(** Parity of [n] inputs; worst case for two-level logic ([2^(n-1)]
    products). *)

val majority : int -> Logic.Cover.t
(** Majority of [n] (odd) inputs. *)

val adder : bits:int -> Logic.Cover.t
(** Ripple-carry adder as a flat two-level function: inputs are two
    [bits]-wide operands, outputs the [bits+1]-bit sum. *)

val comparator : bits:int -> Logic.Cover.t
(** 3 outputs: A<B, A=B, A>B over two [bits]-wide operands. *)

val decoder : bits:int -> Logic.Cover.t
(** Full decoder: [bits] inputs, [2^bits] one-hot outputs. *)

val mux : select_bits:int -> Logic.Cover.t
(** Multiplexer: [select_bits + 2^select_bits] inputs, one output. *)

val priority_encoder : bits:int -> Logic.Cover.t
(** [2^bits] request inputs, [bits + 1] outputs: the index of the
    highest-priority (lowest-numbered) active request plus a valid flag
    (output [bits]). *)

val gray : bits:int -> Logic.Cover.t
(** Binary → Gray-code converter, [bits] in / [bits] out. *)

val bcd7seg : unit -> Logic.Cover.t
(** BCD digit (4 inputs) to seven-segment drive (7 outputs, segments
    a..g); inputs 10–15 are mapped to all-off. *)

val alu_slice : unit -> Logic.Cover.t
(** A 2-bit ALU slice: inputs a1 a0 b1 b0 op1 op0 (6), outputs r1 r0
    carry (3); ops: 00 = add, 01 = sub, 10 = and, 11 = xor. *)

val all : (string * Logic.Cover.t) list
(** The suite used by tests and benches: rd53, rd73, xor5, maj5, add3,
    cmp3, dec4, mux2, pri3, gray4, bcd7seg, alu2. *)
