lib/mcnc/profiles.ml: List
