lib/mcnc/export.ml: Filename Generators List Logic Profiles Synthetic Sys Util
