lib/mcnc/generators.mli: Logic
