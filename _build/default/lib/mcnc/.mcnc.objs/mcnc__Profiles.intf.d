lib/mcnc/profiles.mli:
