lib/mcnc/synthetic.ml: Espresso Float List Logic Profiles
