lib/mcnc/generators.ml: Array Logic
