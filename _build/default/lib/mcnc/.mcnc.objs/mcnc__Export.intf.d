lib/mcnc/export.mli: Logic
