lib/mcnc/synthetic.mli: Logic Profiles Util
