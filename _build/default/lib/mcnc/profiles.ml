type t = { name : string; n_in : int; n_out : int; n_products : int }

let max46 = { name = "max46"; n_in = 9; n_out = 1; n_products = 46 }

let apla = { name = "apla"; n_in = 10; n_out = 12; n_products = 25 }

let t2 = { name = "t2"; n_in = 17; n_out = 16; n_products = 52 }

let table1 = [ max46; apla; t2 ]

let find name = List.find_opt (fun p -> p.name = name) table1
