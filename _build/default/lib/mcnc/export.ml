let suite_entries () =
  let rng = Util.Rng.create 2008 in
  Generators.all
  @ List.map
      (fun r ->
        (r.Synthetic.profile.Profiles.name ^ "_twin", r.Synthetic.on_set))
      (Synthetic.table1_set rng)

let write_suite ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (name, cover) ->
      let pla_path = Filename.concat dir (name ^ ".pla") in
      Logic.Pla_io.write_file pla_path (Logic.Pla_io.spec_of_cover cover);
      let blif_path = Filename.concat dir (name ^ ".blif") in
      Logic.Blif.write_file blif_path (Logic.Blif.of_cover ~name cover);
      (name, pla_path))
    (suite_entries ())
