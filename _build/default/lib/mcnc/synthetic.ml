module Cover = Logic.Cover

type result = {
  profile : Profiles.t;
  on_set : Cover.t;
  minimized : Cover.t;
  achieved_products : int;
}

(* Cube size must match the target: if random cubes are too large their
   union collapses toward a tautology and the minimized count never grows.
   Aim for the on-set to cover roughly a third of the space, which fixes
   the don't-care count per cube at
   log2(0.35 · 2^n_in / target_products). *)
let dc_bias_for ~n_in ~target =
  let dcs =
    Float.max 0.0
      (Float.log2 (0.35 *. float_of_int (1 lsl n_in) /. float_of_int (max 1 target)))
  in
  Float.min 0.8 (dcs /. float_of_int n_in)

let with_profile rng (p : Profiles.t) =
  let target = p.Profiles.n_products in
  let dc_bias = dc_bias_for ~n_in:p.Profiles.n_in ~target in
  let fresh n =
    Cover.random rng ~n_in:p.Profiles.n_in ~n_out:p.Profiles.n_out ~n_cubes:n ~dc_bias
  in
  let rec grow acc best rounds =
    let minimized = Espresso.Minimize.cover acc in
    let best = if Cover.size minimized > Cover.size best then minimized else best in
    if Cover.size minimized >= target || rounds >= 40 then best
    else grow (Cover.union acc (fresh (max 4 ((target + 3) / 4)))) best (rounds + 1)
  in
  let seed = fresh (max 1 (target / 2)) in
  let minimized = grow seed (Cover.empty ~n_in:p.Profiles.n_in ~n_out:p.Profiles.n_out) 0 in
  (* Trim the minimized prime cover down to exactly the target count; the
     trimmed cover is a new, typically near-irredundant function. *)
  let trimmed_cubes =
    List.filteri (fun k _ -> k < target) (Cover.cubes minimized)
  in
  let on_set =
    Cover.make ~n_in:p.Profiles.n_in ~n_out:p.Profiles.n_out trimmed_cubes
  in
  let minimized = Espresso.Minimize.cover on_set in
  { profile = p; on_set; minimized; achieved_products = Cover.size minimized }

let table1_set rng = List.map (with_profile rng) Profiles.table1
