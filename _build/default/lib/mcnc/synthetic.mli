(** Profile-matched synthetic benchmark functions.

    Substitution for the MCNC [.pla] files (see DESIGN.md §3): given a
    target (inputs, outputs, minimized product count) profile, manufacture
    a random function whose espresso-minimized cover has (approximately)
    that many products, so the full parse → minimize → map → area pipeline
    can run end to end on functions shaped like the paper's workloads. *)

type result = {
  profile : Profiles.t;  (** target profile *)
  on_set : Logic.Cover.t;  (** the manufactured function (unminimized) *)
  minimized : Logic.Cover.t;
  achieved_products : int;  (** [Cover.size minimized] *)
}

val with_profile : Util.Rng.t -> Profiles.t -> result
(** Grow a random cover until its minimized form reaches the target
    product count, then trim primes down to the target. The achieved
    count is within a few products of the target (exactness is not
    guaranteed; both values are reported). *)

val table1_set : Util.Rng.t -> result list
(** Synthetic twins of max46, apla and t2. *)
