(** Write the benchmark suite to disk as espresso [.pla] and BLIF files —
    shippable inputs for external tools and for this repo's own CLI. *)

val suite_entries : unit -> (string * Logic.Cover.t) list
(** {!Generators.all} plus synthetic Table 1 twins (deterministic seed). *)

val write_suite : dir:string -> (string * string) list
(** Write every entry as [<name>.pla] and [<name>.blif] under [dir]
    (created if missing). Returns (name, pla-path) pairs. *)
