(* Command-line front end for the ambipolar-CNFET PLA library.

   Subcommands:
     minimize  — espresso-minimize a .pla file
     area      — PLA area of a .pla file in all three technologies
     simulate  — evaluate a .pla on an input vector (functional + switch level)
     phase     — output-phase optimization report
     factor    — algebraic factoring (multi-level synthesis front end)
     map       — split into CLB-sized blocks (Shannon decomposition)
     fpga      — the Table 2 experiment
     yield     — Monte-Carlo yield of a mapped .pla under defects
     suite     — export the benchmark suite as .pla/.blif files
     bench-parallel — sequential vs parallel batch-evaluation benchmark
     bench-espresso — word-parallel cover kernel + minimization benchmark
     bench-ab  — compare two Assess.Run artifacts, exit non-zero on regression
     serve     — the evaluation service daemon (socket or stdin/stdout pipe)
     loadgen   — closed-loop load generator + oracle checker for serve *)

open Cmdliner

let read_spec path =
  try Ok (Logic.Pla_io.parse_file path) with
  | Logic.Pla_io.Parse_error (line, msg) ->
    Error (Printf.sprintf "%s:%d: %s" path line msg)
  | Sys_error msg -> Error msg

let pla_file =
  let doc = "Input function in espresso .pla format." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.pla" ~doc)

let exits = Cmd.Exit.defaults

(* --- shared --trace support -------------------------------------------------- *)

let trace_arg =
  let doc =
    "Record tracing spans during the run and write them as Chrome trace-event \
     JSON to $(docv) (loadable in chrome://tracing or ui.perfetto.dev). A \
     hierarchical self/total text profile is printed afterwards, and every \
     span feeds a $(b,span.)* histogram in the metrics registry."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Install a process-wide collector around [f], then flush it: Chrome JSON
   to [path], text profile + span summary to stdout. The collector is
   uninstalled (and the file written) whether [f] returns or raises. *)
let with_tracing trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let t = Obs.Trace.create () in
    Obs.Trace.set_observer t (fun ~name ~dur_s ->
        Runtime.Metrics.span_observer Runtime.Metrics.global ~name ~dur_s);
    Obs.Trace.install t;
    let flush () =
      Obs.Trace.uninstall ();
      let events = Obs.Trace.events t in
      let oc = open_out path in
      output_string oc (Obs.Export.to_chrome_json events);
      close_out oc;
      Printf.printf "trace: %d events on %d track(s), %d dropped; subsystems: %s\n"
        (List.length events) (Obs.Trace.tracks t) (Obs.Trace.dropped t)
        (String.concat ", " (Obs.Export.subsystems events));
      Printf.printf "trace written to %s\n" path;
      print_string (Obs.Export.text_profile events)
    in
    Fun.protect ~finally:flush f

(* --- shared assess-run emission ---------------------------------------------- *)

let run_out_arg =
  let doc =
    "Also write the run as an $(b,Assess.Run) artifact directory under $(docv) \
     (run.json + index.tsv entry) for $(b,bench-ab) comparison. The path of the \
     new run directory is printed as $(b,assess run: PATH)."
  in
  Arg.(value & opt (some string) None & info [ "run-out" ] ~docv:"DIR" ~doc)

let repeats_arg =
  let doc =
    "Repeat the whole measurement $(docv) times and record every repeat as a \
     sample in the metric series (>= 3 recommended before trusting an A/B \
     verdict's confidence interval)."
  in
  Arg.(value & opt int 1 & info [ "repeats" ] ~docv:"N" ~doc)

(* Save [arun] under [dir] and print where it went; a failed save is a
   hard error (the caller usually feeds the path into a CI gate). *)
let save_assess_run ~dir arun =
  match Assess.Run.save ~dir arun with
  | Ok path ->
    Printf.printf "assess run: %s\n" path;
    false
  | Error e ->
    Printf.eprintf "cnfet_tool: cannot write assess run: %s\n" (Assess.Run.error_to_string e);
    true

(* --- minimize ---------------------------------------------------------------- *)

let minimize_cmd =
  let run path output =
    match read_spec path with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let r = Espresso.Minimize.minimize ~dc:spec.Logic.Pla_io.dc_set spec.Logic.Pla_io.on_set in
      let c0, l0 = r.Espresso.Minimize.initial_cost in
      let c1, l1 = r.Espresso.Minimize.final_cost in
      Printf.eprintf "minimized: %d cubes / %d literals -> %d cubes / %d literals (%d rounds)\n"
        c0 l0 c1 l1 r.Espresso.Minimize.iterations;
      let text =
        Logic.Pla_io.to_string
          ?input_labels:spec.Logic.Pla_io.input_labels
          ?output_labels:spec.Logic.Pla_io.output_labels ~on_set:r.Espresso.Minimize.cover
          ~dc_set:
            (Logic.Cover.empty ~n_in:spec.Logic.Pla_io.n_in ~n_out:spec.Logic.Pla_io.n_out)
          ()
      in
      (match output with
      | None -> print_string text
      | Some out ->
        let oc = open_out out in
        output_string oc text;
        close_out oc);
      0
  in
  let output =
    let doc = "Write the minimized cover to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let doc = "Espresso-minimize a two-level function" in
  Cmd.v (Cmd.info "minimize" ~doc ~exits) Term.(const run $ pla_file $ output)

(* --- area -------------------------------------------------------------------- *)

let area_cmd =
  let run path no_minimize =
    match read_spec path with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let cover =
        if no_minimize then spec.Logic.Pla_io.on_set
        else Espresso.Minimize.cover ~dc:spec.Logic.Pla_io.dc_set spec.Logic.Pla_io.on_set
      in
      let p = Cnfet.Area.profile_of_cover cover in
      Printf.printf "profile: %d inputs, %d outputs, %d products%s\n" p.Cnfet.Area.n_in
        p.Cnfet.Area.n_out p.Cnfet.Area.n_products
        (if no_minimize then "" else " (after espresso)");
      let t = Util.Tableau.create [ "technology"; "area (L^2)"; "input wires"; "vs CNFET" ] in
      let cnfet_area = Cnfet.Area.pla_area Device.Tech.cnfet p in
      List.iter
        (fun fam ->
          let tech = Device.Tech.get fam in
          let area = Cnfet.Area.pla_area tech p in
          Util.Tableau.add_row t
            [
              Device.Tech.name fam;
              Util.Tableau.cell_int area;
              string_of_int (Cnfet.Area.input_wires tech p);
              Printf.sprintf "%.2fx" (float_of_int area /. float_of_int cnfet_area);
            ])
        Device.Tech.all;
      Util.Tableau.print t;
      0
  in
  let no_minimize =
    let doc = "Use the cover as-is instead of minimizing first." in
    Arg.(value & flag & info [ "no-minimize" ] ~doc)
  in
  let doc = "PLA area in Flash / EEPROM / ambipolar-CNFET technologies" in
  Cmd.v (Cmd.info "area" ~doc ~exits) Term.(const run $ pla_file $ no_minimize)

(* --- simulate ----------------------------------------------------------------- *)

let simulate_cmd =
  let run path vector switch_level =
    match read_spec path with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let n_in = spec.Logic.Pla_io.n_in in
      if String.length vector <> n_in then begin
        Printf.eprintf "input vector must have %d bits\n" n_in;
        1
      end
      else begin
        let inputs = Array.init n_in (fun i -> vector.[i] = '1') in
        let pla = Cnfet.Pla.of_minimized ~dc:spec.Logic.Pla_io.dc_set spec.Logic.Pla_io.on_set in
        let outputs =
          if switch_level then Cnfet.Pla.simulate_hw (Cnfet.Pla.build_hw pla) inputs
          else Cnfet.Pla.eval pla inputs
        in
        Array.iter (fun b -> print_char (if b then '1' else '0')) outputs;
        print_newline ();
        0
      end
  in
  let vector =
    let doc = "Input assignment as a 0/1 string, first input leftmost." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"BITS" ~doc)
  in
  let switch_level =
    let doc = "Simulate the programmed transistor network (pre-charge/evaluate phases) instead of the zero-delay model." in
    Arg.(value & flag & info [ "switch-level" ] ~doc)
  in
  let doc = "Evaluate a function mapped onto a CNFET PLA" in
  Cmd.v (Cmd.info "simulate" ~doc ~exits) Term.(const run $ pla_file $ vector $ switch_level)

(* --- phase -------------------------------------------------------------------- *)

let phase_cmd =
  let run path =
    match read_spec path with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let r = Espresso.Phase.optimize ~dc:spec.Logic.Pla_io.dc_set spec.Logic.Pla_io.on_set in
      Printf.printf "all-positive products: %d\n" r.Espresso.Phase.products_all_positive;
      Printf.printf "phase-optimized:       %d\n" r.Espresso.Phase.products_optimized;
      Array.iteri
        (fun o pos -> Printf.printf "  output %d: %s phase\n" o (if pos then "positive" else "negative"))
        r.Espresso.Phase.phases;
      0
  in
  let doc = "Output-phase optimization (Sasao / MINI II style)" in
  Cmd.v (Cmd.info "phase" ~doc ~exits) Term.(const run $ pla_file)

(* --- factor ------------------------------------------------------------------- *)

let factor_cmd =
  let run path =
    match read_spec path with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let m = Espresso.Minimize.cover ~dc:spec.Logic.Pla_io.dc_set spec.Logic.Pla_io.on_set in
      let exprs = Espresso.Factor.factor_multi m in
      Array.iteri
        (fun o e ->
          Printf.printf "f%d = %s\n" o (Espresso.Factor.to_string e))
        exprs;
      let flat = Espresso.Factor.flat_literal_count m in
      let fact = Array.fold_left (fun n e -> n + Espresso.Factor.literal_count e) 0 exprs in
      Printf.eprintf "literals: %d (flat SOP, shared) -> %d (factored, per output); verified: %b\n"
        flat fact
        (Espresso.Factor.verify m exprs);
      0
  in
  let doc = "Algebraic factoring of a minimized two-level function" in
  Cmd.v (Cmd.info "factor" ~doc ~exits) Term.(const run $ pla_file)

(* --- map ---------------------------------------------------------------------- *)

let map_cmd =
  let run path clb_inputs =
    match read_spec path with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let m = Fpga.Map.map_cover ~clb_inputs spec.Logic.Pla_io.on_set in
      Printf.printf "mapped into %d CLB blocks (%d levels, max fanin %d), equivalent: %b\n"
        (Fpga.Map.block_count m) (Fpga.Map.levels m) (Fpga.Map.max_block_inputs m)
        (if spec.Logic.Pla_io.n_in <= 20 then Fpga.Map.verify_against m spec.Logic.Pla_io.on_set
         else true);
      0
  in
  let clb_inputs =
    let doc = "CLB input budget." in
    Arg.(value & opt int 6 & info [ "k"; "clb-inputs" ] ~docv:"K" ~doc)
  in
  let doc = "Split a function into CLB-sized blocks (Shannon decomposition)" in
  Cmd.v (Cmd.info "map" ~doc ~exits) Term.(const run $ pla_file $ clb_inputs)

(* --- fpga --------------------------------------------------------------------- *)

let fpga_cmd =
  let run grid seed =
    let t = Fpga.Flow.table2_experiment ~seed ~grid () in
    Format.printf "%a@.%a@.speed-up: %.2fx@." Fpga.Flow.pp_outcome t.Fpga.Flow.standard
      Fpga.Flow.pp_outcome t.Fpga.Flow.cnfet t.Fpga.Flow.speedup;
    0
  in
  let grid =
    let doc = "Standard-FPGA grid side (the paper-scale experiment uses 17)." in
    Arg.(value & opt int 17 & info [ "grid" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Random seed for design generation, placement and routing." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let doc = "Run the Table 2 FPGA experiment (place, route, time)" in
  Cmd.v (Cmd.info "fpga" ~doc ~exits) Term.(const run $ grid $ seed)

(* --- suite -------------------------------------------------------------------- *)

let suite_cmd =
  let run dir =
    let written = Mcnc.Export.write_suite ~dir in
    List.iter (fun (name, path) -> Printf.printf "%-12s -> %s\n" name path) written;
    Printf.printf "%d functions written (.pla + .blif) under %s\n" (List.length written) dir;
    0
  in
  let dir =
    let doc = "Output directory." in
    Arg.(value & opt string "benchmarks" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let doc = "Export the benchmark suite as .pla and BLIF files" in
  Cmd.v (Cmd.info "suite" ~doc ~exits) Term.(const run $ dir)

(* --- yield -------------------------------------------------------------------- *)

let yield_cmd =
  let run path rate spares trials seed =
    match read_spec path with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let pla = Cnfet.Pla.of_minimized ~dc:spec.Logic.Pla_io.dc_set spec.Logic.Pla_io.on_set in
      let rng = Util.Rng.create seed in
      let p = Fault.Yield.estimate rng ~trials ~spare_rows:spares pla ~defect_rate:rate in
      Printf.printf "defect rate %.2f%%, %d trials:\n" (100.0 *. rate) trials;
      Printf.printf "  baseline (fixed rows):    %.1f%%\n" (100.0 *. p.Fault.Yield.yield_baseline);
      Printf.printf "  remapped:                 %.1f%%\n" (100.0 *. p.Fault.Yield.yield_remap);
      Printf.printf "  remapped + %d spare rows:  %.1f%%\n" spares
        (100.0 *. p.Fault.Yield.yield_spares);
      0
  in
  let rate =
    let doc = "Per-device defect probability." in
    Arg.(value & opt float 0.01 & info [ "rate" ] ~docv:"P" ~doc)
  in
  let spares =
    let doc = "Spare AND-plane rows." in
    Arg.(value & opt int 2 & info [ "spares" ] ~docv:"N" ~doc)
  in
  let trials =
    let doc = "Monte-Carlo trials." in
    Arg.(value & opt int 300 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Random seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let doc = "Monte-Carlo functional yield under crosspoint defects" in
  Cmd.v (Cmd.info "yield" ~doc ~exits)
    Term.(const run $ pla_file $ rate $ spares $ trials $ seed)

(* --- bench-parallel ------------------------------------------------------ *)

let bench_parallel_cmd =
  let run jobs trials seed repeats run_out show_metrics out trace =
    if trials < 1 then begin
      prerr_endline "cnfet_tool: --trials must be at least 1";
      2
    end
    else begin
      with_tracing trace @@ fun () ->
      let jobs = match jobs with Some n -> max 1 n | None -> Runtime.Pool.default_jobs () in
      let metrics = Runtime.Metrics.global in
      let cache = Runtime.Cache.create () in
      Printf.printf "parallel batch-evaluation benchmark: %d job(s), %d yield trials, %d repeat(s)\n%!"
        jobs trials repeats;
      let reports, arun =
        Runtime.Bench.run_assess ~metrics ~cache ~seed ~trials ~repeats ~jobs ()
      in
      List.iter (fun r -> Format.printf "%a@." Runtime.Bench.pp_report r) reports;
      let run_failed =
        match run_out with None -> false | Some dir -> save_assess_run ~dir arun
      in
      Printf.printf "cache: %d hits / %d misses (hit rate %.1f%%)\n" (Runtime.Cache.hits cache)
        (Runtime.Cache.misses cache)
        (100.0 *. Runtime.Cache.hit_rate cache);
      let write_failed =
        match out with
        | None -> false
        | Some path -> (
          try
            Runtime.Bench.write_json ~cache ~metrics ~jobs ~path reports;
            Printf.printf "wrote %s\n" path;
            false
          with Sys_error msg ->
            Printf.eprintf "cnfet_tool: cannot write results: %s\n" msg;
            true)
      in
      if show_metrics then begin
        print_endline "--- metrics ---";
        print_string (Runtime.Metrics.dump metrics)
      end;
      if write_failed || run_failed then 1
      else if List.for_all (fun r -> r.Runtime.Bench.identical) reports then 0
      else begin
        prerr_endline "ERROR: parallel results diverged from sequential";
        1
      end
    end
  in
  let jobs =
    let doc = "Worker domains (default: recommended for this machine)." in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let trials =
    let doc = "Monte-Carlo yield trials (variation uses 8x this)." in
    Arg.(value & opt int 1000 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Random seed for the Monte-Carlo workloads." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let show_metrics =
    let doc = "Dump the metrics registry (counters, gauges, latency histograms) after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let out =
    let doc = "Write machine-readable results to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE.json" ~doc)
  in
  let doc = "Benchmark the parallel batch-evaluation engine against the sequential path" in
  Cmd.v
    (Cmd.info "bench-parallel" ~doc ~exits)
    Term.(
      const run $ jobs $ trials $ seed $ repeats_arg $ run_out_arg $ show_metrics $ out
      $ trace_arg)

(* --- bench-espresso ------------------------------------------------------ *)

let bench_espresso_cmd =
  let run quick seed repeats run_out show_metrics out trace =
    with_tracing trace @@ fun () ->
    let metrics = Runtime.Metrics.global in
    Printf.printf "espresso + cover-kernel benchmark%s (seed %d, %d repeat(s))\n%!"
      (if quick then " (quick)" else "")
      seed repeats;
    let reports, arun = Runtime.Bench_espresso.run_assess ~metrics ~quick ~seed ~repeats () in
    let run_failed =
      match run_out with None -> false | Some dir -> save_assess_run ~dir arun
    in
    List.iter (fun r -> Format.printf "%a@." Runtime.Bench_espresso.pp_report r) reports;
    Printf.printf "packed-vs-naive op speedup (geomean): %.2fx\n"
      (Runtime.Bench_espresso.geomean_speedup reports);
    Printf.printf "blocked-vs-scalar eval speedup (geomean): %.2fx\n"
      (Runtime.Bench_espresso.geomean_block_speedup reports);
    let hw_ok = Runtime.Bench_espresso.hw_crosscheck () in
    Printf.printf "switch-level cross-check (cmp2): %s\n"
      (if hw_ok then "ok" else "MISMATCH");
    let write_failed =
      try
        Runtime.Bench_espresso.write_json ~quick ~seed ~path:out reports;
        Printf.printf "wrote %s\n" out;
        false
      with Sys_error msg ->
        Printf.eprintf "cnfet_tool: cannot write results: %s\n" msg;
        true
    in
    if show_metrics then begin
      print_endline "--- metrics ---";
      print_string (Runtime.Metrics.dump metrics)
    end;
    if write_failed || run_failed then 1
    else if not hw_ok then begin
      prerr_endline "ERROR: switch-level simulation diverged from the compiled evaluator";
      1
    end
    else if not (List.for_all (fun r -> r.Runtime.Bench_espresso.identical) reports)
    then begin
      prerr_endline "ERROR: packed cover ops diverged from the naive reference";
      1
    end
    else if
      not (List.for_all (fun r -> r.Runtime.Bench_espresso.block_identical) reports)
    then begin
      prerr_endline "ERROR: bit-sliced eval diverged from the scalar evaluator";
      1
    end
    else 0
  in
  let quick =
    let doc = "Short measurement windows, Table-1 profiles only (CI smoke mode)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let seed =
    let doc = "Random seed for the synthetic workloads and eval minterms." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let show_metrics =
    let doc = "Dump the metrics registry (counters, gauges, latency histograms) after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let out =
    let doc = "Write machine-readable results to $(docv)." in
    Arg.(value & opt string "BENCH_espresso.json" & info [ "out" ] ~docv:"FILE.json" ~doc)
  in
  let doc = "Benchmark the word-parallel cover kernel and espresso minimization" in
  Cmd.v
    (Cmd.info "bench-espresso" ~doc ~exits)
    Term.(const run $ quick $ seed $ repeats_arg $ run_out_arg $ show_metrics $ out $ trace_arg)

(* --- bench-ab ------------------------------------------------------------- *)

let bench_ab_cmd =
  let run path_a path_b min_floor floor_mult metrics_re seed out =
    (* A run argument is a run directory, a run.json, or a bare run id
       under the default _bench/runs working area. *)
    let resolve path =
      if Sys.file_exists path then path
      else Filename.concat Assess.Run.default_dir path
    in
    let load label path =
      match Assess.Run.load (resolve path) with
      | Ok r -> Ok r
      | Error e ->
        Printf.eprintf "cnfet_tool: run %s (%s): %s\n" label path
          (Assess.Run.error_to_string e);
        Error ()
    in
    match (load "A" path_a, load "B" path_b) with
    | Error (), _ | _, Error () -> 2
    | Ok a, Ok b ->
      if a.Assess.Run.profile <> b.Assess.Run.profile then
        Printf.eprintf
          "cnfet_tool: warning: comparing different profiles (%s vs %s)\n"
          a.Assess.Run.profile b.Assess.Run.profile;
      let filter =
        match metrics_re with
        | None -> fun _ -> true
        | Some re ->
          let re = Str.regexp re in
          fun name -> (try ignore (Str.search_forward re name 0); true with Not_found -> false)
      in
      let report = Assess.Ab.compare ?min_floor ?floor_mult ~seed ~filter a b in
      Format.printf "%a" Assess.Ab.pp report;
      let write_failed =
        match out with
        | None -> false
        | Some path -> (
          try
            let oc = open_out path in
            output_string oc (Assess.Ab.to_json report);
            close_out oc;
            Printf.printf "report written to %s\n" path;
            false
          with Sys_error msg ->
            Printf.eprintf "cnfet_tool: cannot write report: %s\n" msg;
            true)
      in
      if List.for_all (fun (m : Assess.Ab.metric_result) -> Result.is_error m.Assess.Ab.result)
           report.Assess.Ab.metrics
         && report.Assess.Ab.metrics <> []
      then begin
        (* every shared metric degenerate — a comparison that can never
           fail is not a gate, so fail loudly instead of rubber-stamping *)
        Printf.eprintf "bench-ab: FAIL - no metric could be compared\n";
        1
      end
      else if Assess.Ab.has_regression report then begin
        Printf.eprintf "bench-ab: FAIL - regressed beyond the noise floor: %s\n"
          (String.concat ", " (Assess.Ab.regressed report));
        1
      end
      else if write_failed then 1
      else 0
  in
  let path_a =
    let doc = "Reference run: artifact directory, run.json path, or a run id under _bench/runs." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN_A" ~doc)
  in
  let path_b =
    let doc = "Candidate run, same forms as $(docv)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RUN_B" ~doc)
  in
  let min_floor =
    let doc =
      "Minimum relative noise floor (e.g. 0.05 = 5%); per-metric floors never drop \
       below it however tight the repeat spread looks."
    in
    Arg.(value & opt (some float) None & info [ "min-floor" ] ~docv:"F" ~doc)
  in
  let floor_mult =
    let doc = "Noise-floor multiplier applied to the repeat spread (default 3.0)." in
    Arg.(value & opt (some float) None & info [ "floor-mult" ] ~docv:"M" ~doc)
  in
  let metrics_re =
    let doc = "Only compare metrics whose name matches the regexp $(docv) (Str syntax)." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"RE" ~doc)
  in
  let seed =
    let doc = "Bootstrap-resampling seed (fixed = reproducible verdicts)." in
    Arg.(value & opt int 9001 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let out =
    let doc = "Write the comparison report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE.json" ~doc)
  in
  let doc =
    "Compare two benchmark runs metric-by-metric; exit non-zero iff any metric \
     regressed beyond the noise floor"
  in
  Cmd.v
    (Cmd.info "bench-ab" ~doc ~exits)
    Term.(const run $ path_a $ path_b $ min_floor $ floor_mult $ metrics_re $ seed $ out)

(* --- sweep ------------------------------------------------------------------ *)

let sweep_cmd =
  let run quick profiles seed jobs window checkpoint out front_out det_out strict repeats
      run_out show_metrics trace =
    with_tracing trace @@ fun () ->
    let base = if quick then Sweep.Drive.quick else Sweep.Drive.default in
    let config =
      {
        base with
        Sweep.Drive.profiles = Option.value profiles ~default:base.Sweep.Drive.profiles;
        seed;
        jobs = (match jobs with Some j -> max 1 j | None -> base.Sweep.Drive.jobs);
        window = Option.value window ~default:base.Sweep.Drive.window;
        checkpoint;
      }
    in
    let metrics = Runtime.Metrics.create () in
    let repeats = max 1 repeats in
    let t0 = Unix.gettimeofday () in
    let last = ref None in
    let per_repeat =
      List.init repeats (fun k ->
          (* A checkpoint resumes (or seeds) only the first repeat: later
             repeats re-measure the full population. *)
          let config = if k = 0 then config else { config with checkpoint = None } in
          let r = Sweep.Drive.run ~metrics config in
          last := Some r;
          Sweep.Report.to_metrics r)
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let r = Option.get !last in
    print_string (Sweep.Report.summary r);
    (match out with
    | Some path ->
      Sweep.Report.write ~path (Sweep.Report.bench_json r);
      Printf.printf "bench view written to %s\n" path
    | None -> ());
    (match front_out with
    | Some path ->
      Sweep.Report.write ~path (Sweep.Report.front_json r);
      Printf.printf "fronts written to %s\n" path
    | None -> ());
    (match det_out with
    | Some path ->
      Sweep.Report.write ~path (Sweep.Report.deterministic_json r);
      Printf.printf "population written to %s\n" path
    | None -> ());
    if show_metrics then print_string (Runtime.Metrics.dump metrics);
    let profile = if quick then "sweep-quick" else "sweep" in
    let arun =
      Assess.Run.create ~profile ~seed ~wall_s
        ~meta:
          [
            ("jobs", string_of_int config.Sweep.Drive.jobs);
            ("profiles", string_of_int config.Sweep.Drive.profiles);
            ("quick", string_of_bool quick);
            ("repeats", string_of_int repeats);
          ]
        (Sweep.Report.merge_metrics per_repeat)
    in
    let save_failed =
      match run_out with None -> false | Some dir -> save_assess_run ~dir arun
    in
    let failed = r.Sweep.Drive.r_failures <> [] in
    if failed then
      Printf.eprintf "cnfet_tool sweep: %d item(s) failed\n"
        (List.length r.Sweep.Drive.r_failures);
    if save_failed || (strict && failed) then 1 else 0
  in
  let quick =
    let doc = "Quick population: 8 profiles over the small space." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let profiles =
    let doc = "Population size (default 1024, or 8 with $(b,--quick))." in
    Arg.(value & opt (some int) None & info [ "profiles" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Sweep seed; every per-item stream derives from it." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let jobs =
    let doc = "Worker domains (default: cores - 1, or 2 with $(b,--quick))." in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let window =
    let doc = "Max in-flight items (default 4 x jobs)." in
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"N" ~doc)
  in
  let checkpoint =
    let doc =
      "JSONL progress file: completed items are appended as they finish, and a \
       rerun with the same sweep parameters resumes from it instead of \
       recomputing."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let out =
    let doc = "Write the full measurement view (population + fronts + per-stage \
               latency percentiles) as JSON to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE.json" ~doc)
  in
  let front_out =
    let doc =
      "Write the deterministic Pareto-front view to $(docv) — byte-identical \
       across machines and $(b,--jobs) for a fixed seed (the golden-regression \
       artifact)."
    in
    Arg.(value & opt (some string) None & info [ "front-out" ] ~docv:"FILE.json" ~doc)
  in
  let det_out =
    let doc =
      "Write the deterministic population view (every item and failure, no \
       latencies) to $(docv) — byte-identical across $(b,--jobs) and \
       $(b,--window) for a fixed seed."
    in
    Arg.(value & opt (some string) None & info [ "det-out" ] ~docv:"FILE.json" ~doc)
  in
  let strict =
    let doc = "Exit non-zero if any item failed." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let show_metrics =
    let doc = "Dump the metrics registry (stage histograms, pool gauges) after the sweep." in
    Arg.(value & flag & info [ "show-metrics" ] ~doc)
  in
  let doc =
    "Population-scale silicon sweep: fan synthetic profiles through minimize, \
     phase, fold, map, place, route, timing and yield on the domain pool; \
     report per-stage latencies and area/frequency/yield Pareto fronts"
  in
  Cmd.v (Cmd.info "sweep" ~doc ~exits)
    Term.(
      const run $ quick $ profiles $ seed $ jobs $ window $ checkpoint $ out $ front_out
      $ det_out $ strict $ repeats_arg $ run_out_arg $ show_metrics $ trace_arg)

(* --- classify ------------------------------------------------------------- *)

let classify_cmd =
  let run quick seed jobs window samples trials spares rates sigmas checkpoint out det_out
      strict repeats run_out show_metrics trace =
    with_tracing trace @@ fun () ->
    let base = if quick then Classify.Envelope.quick else Classify.Envelope.default in
    let config =
      {
        base with
        Classify.Envelope.seed;
        jobs = (match jobs with Some j -> max 1 j | None -> base.Classify.Envelope.jobs);
        window = Option.value window ~default:base.Classify.Envelope.window;
        samples = Option.value samples ~default:base.Classify.Envelope.samples;
        trials = Option.value trials ~default:base.Classify.Envelope.trials;
        spare_rows = Option.value spares ~default:base.Classify.Envelope.spare_rows;
        rates = Option.value rates ~default:base.Classify.Envelope.rates;
        sigmas = Option.value sigmas ~default:base.Classify.Envelope.sigmas;
        checkpoint;
      }
    in
    let metrics = Runtime.Metrics.create () in
    let repeats = max 1 repeats in
    let t0 = Unix.gettimeofday () in
    let per_repeat =
      List.init repeats (fun k ->
          (* A checkpoint resumes (or seeds) only the first repeat: later
             repeats re-measure the full envelope. *)
          let config = if k = 0 then config else { config with checkpoint = None } in
          Classify.Envelope.run ~metrics config)
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let r = List.nth per_repeat (repeats - 1) in
    print_string (Classify.Envelope.summary r);
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Assess.Json.to_string ~indent:2 (Classify.Envelope.json r));
      output_char oc '\n';
      close_out oc;
      Printf.printf "envelope written to %s\n" path
    | None -> ());
    (match det_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Assess.Json.to_string ~indent:2 (Classify.Envelope.deterministic_json r));
      output_char oc '\n';
      close_out oc;
      Printf.printf "deterministic view written to %s\n" path
    | None -> ());
    if show_metrics then print_string (Runtime.Metrics.dump metrics);
    let profile = if quick then "classify-quick" else "classify" in
    let faulted r =
      List.filter (fun p -> p.Classify.Envelope.pt_rate > 0.0) r.Classify.Envelope.ep_points
    in
    let series f = Array.of_list (List.map f per_repeat) in
    let worst f r =
      List.fold_left (fun m p -> min m (f p)) 1.0 (faulted r)
    in
    let recovery_p90 r =
      match List.assoc_opt 90. (Classify.Envelope.recovery_percentiles r) with
      | Some v -> v
      | None -> 0.0
    in
    let arun =
      Assess.Run.create ~profile ~seed ~wall_s
        ~meta:
          [
            ("jobs", string_of_int config.Classify.Envelope.jobs);
            ("samples", string_of_int config.Classify.Envelope.samples);
            ("trials", string_of_int config.Classify.Envelope.trials);
            ("quick", string_of_bool quick);
            ("repeats", string_of_int repeats);
          ]
        [
          Assess.Run.metric ~units:"frac" "classify.acc_clean"
            (series (fun r -> r.Classify.Envelope.ep_acc_clean));
          Assess.Run.metric ~units:"frac" "classify.acc_pre_worst"
            (series (worst (fun p -> p.Classify.Envelope.pt_acc_pre)));
          Assess.Run.metric ~units:"frac" "classify.acc_post_worst"
            (series (worst (fun p -> p.Classify.Envelope.pt_acc_post)));
          Assess.Run.metric ~units:"s" ~higher_is_better:false "classify.recovery_p90_s"
            (series recovery_p90);
          Assess.Run.metric ~units:"s" ~higher_is_better:false "classify.wall_s"
            (series (fun r -> r.Classify.Envelope.ep_wall_s));
        ]
    in
    let save_failed =
      match run_out with None -> false | Some dir -> save_assess_run ~dir arun
    in
    let failed = r.Classify.Envelope.ep_failures <> [] in
    if failed then
      Printf.eprintf "cnfet_tool classify: %d grid point(s) failed\n"
        (List.length r.Classify.Envelope.ep_failures);
    if save_failed || (strict && failed) then 1 else 0
  in
  let quick =
    let doc = "Quick envelope: 128 samples x 4 trials over a 3 x 2 grid." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let seed =
    let doc = "Envelope seed; samples, D2D draws and defect maps all derive from it." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let jobs =
    let doc = "Worker domains (default: cores - 1, or 2 with $(b,--quick))." in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let window =
    let doc = "Max in-flight grid points (default 4 x jobs)." in
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"N" ~doc)
  in
  let samples =
    let doc = "Evaluation population size per grid point." in
    Arg.(value & opt (some int) None & info [ "samples" ] ~docv:"N" ~doc)
  in
  let trials =
    let doc = "Defect-map draws per grid point." in
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc)
  in
  let spares =
    let doc = "Spare physical rows available to the repair flow." in
    Arg.(value & opt (some int) None & info [ "spares" ] ~docv:"N" ~doc)
  in
  let rates =
    let doc = "Comma-separated crosspoint fault rates (grid rows), ascending." in
    Arg.(value & opt (some (list float)) None & info [ "rates" ] ~docv:"R,R,..." ~doc)
  in
  let sigmas =
    let doc = "Comma-separated D2D weight-perturbation sigmas (grid columns)." in
    Arg.(value & opt (some (list float)) None & info [ "sigmas" ] ~docv:"S,S,..." ~doc)
  in
  let checkpoint =
    let doc =
      "JSONL progress file: completed grid points are appended as they finish, \
       and a rerun with the same envelope parameters resumes from it."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let out =
    let doc = "Write the full envelope (BENCH_classify.json) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE.json" ~doc)
  in
  let det_out =
    let doc =
      "Write the deterministic envelope view (accuracies, counters, confusion — \
       no latencies) to $(docv) — byte-identical across $(b,--jobs) and \
       $(b,--window) for a fixed seed."
    in
    Arg.(value & opt (some string) None & info [ "det-out" ] ~docv:"FILE.json" ~doc)
  in
  let strict =
    let doc = "Exit non-zero if any grid point failed." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let show_metrics =
    let doc = "Dump the metrics registry (stage histograms, pool gauges) after the run." in
    Arg.(value & flag & info [ "show-metrics" ] ~doc)
  in
  let doc =
    "Degradation envelope for the crossbar classifier: accuracy over a fault-rate \
     x noise-sigma grid, before and after the ATPG-detect / spare-row-repair / \
     re-verify loop"
  in
  Cmd.v (Cmd.info "classify" ~doc ~exits)
    Term.(
      const run $ quick $ seed $ jobs $ window $ samples $ trials $ spares $ rates $ sigmas
      $ checkpoint $ out $ det_out $ strict $ repeats_arg $ run_out_arg $ show_metrics
      $ trace_arg)

(* --- fuzz ---------------------------------------------------------------- *)

let fuzz_cmd =
  let run seed budget filter corpus jobs list_only show_metrics trace =
    if list_only then begin
      List.iter
        (fun p -> Printf.printf "%-36s %d cases\n" (Prop.Runner.name p) (Prop.Runner.count p))
        (Prop.Fuzz.select ?filter Prop.Props.all);
      0
    end
    else begin
      with_tracing trace @@ fun () ->
      let metrics = Runtime.Metrics.global in
      let config =
        { Prop.Fuzz.seed; budget_ms = budget; filter; corpus_dir = corpus; jobs }
      in
      Printf.printf "property fuzz (seed %d%s%s)\n%!" seed
        (match budget with Some ms -> Printf.sprintf ", budget %d ms" ms | None -> "")
        (match filter with Some re -> Printf.sprintf ", filter %s" re | None -> "");
      let report = Prop.Fuzz.run ~metrics config in
      print_string (Prop.Fuzz.render report);
      if show_metrics then begin
        print_endline "--- metrics ---";
        print_string (Runtime.Metrics.dump metrics)
      end;
      if Prop.Fuzz.failures report = 0 then 0 else 1
    end
  in
  let seed =
    let doc = "Master seed; every property derives its own deterministic case-seed chain from it." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let budget =
    let doc =
      "Wall-clock budget (milliseconds) for fresh generation; checked between properties, so \
       corpus replay always completes and a partial run is a prefix of the full one."
    in
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"MS" ~doc)
  in
  let filter =
    let doc = "Only run properties whose name matches the regexp $(docv) (Str syntax, searched anywhere in the name)." in
    Arg.(value & opt (some string) None & info [ "filter" ] ~docv:"RE" ~doc)
  in
  let corpus =
    let doc = "Counterexample corpus directory: replayed before fresh generation, written on new failures." in
    Arg.(value & opt string Prop.Corpus.default_dir & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let jobs =
    let doc = "Run properties on $(docv) worker domains (results are identical at any job count)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)
  in
  let list_only =
    let doc = "List the (filtered) properties and their case counts, then exit." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let show_metrics =
    let doc = "Dump the metrics registry (counters, gauges, latency histograms) after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let doc = "Property-based fuzzing with shrinking and a persistent counterexample corpus" in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~exits)
    Term.(const run $ seed $ budget $ filter $ corpus $ jobs $ list_only $ show_metrics $ trace_arg)

(* --- chaos --------------------------------------------------------------- *)

let chaos_cmd =
  let run seed budget max_rounds spares jobs out show_metrics trace =
    match
      let s = String.trim budget in
      let s = if String.length s > 1 && s.[String.length s - 1] = 's' then String.sub s 0 (String.length s - 1) else s in
      float_of_string_opt s
    with
    | None ->
      Printf.eprintf "chaos: bad --budget %S (want seconds, e.g. 20 or 20s)\n" budget;
      2
    | Some budget_s ->
      with_tracing trace @@ fun () ->
      Printf.printf "chaos run (seed %d, budget %gs, max %d rounds)\n%!" seed budget_s max_rounds;
      let report = Runtime.Chaos.run ~seed ~budget_s ~max_rounds ~spare_rows:spares ?jobs () in
      print_string (Runtime.Chaos.summary report);
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Runtime.Chaos.to_json report);
        close_out oc;
        Printf.printf "report written to %s\n" path);
      if show_metrics then begin
        print_endline "--- metrics ---";
        print_string (Runtime.Metrics.dump Runtime.Metrics.global)
      end;
      (* The self-healing gate: every detectable injected fault must end
         up repaired (or proven unrepairable within the spare budget),
         and the supervised batches must have stayed bit-correct. *)
      if Runtime.Chaos.detected_unrepaired report > 0 then begin
        Printf.eprintf "chaos: FAIL - %d detected faults left unrepaired\n"
          (Runtime.Chaos.detected_unrepaired report);
        1
      end
      else if report.Runtime.Chaos.miscompares > 0 then begin
        Printf.eprintf "chaos: FAIL - %d supervised evaluations differed from the oracle\n"
          report.Runtime.Chaos.miscompares;
        1
      end
      else 0
  in
  let seed =
    let doc = "Fault-plan seed: the injected fault set is a pure function of it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let budget =
    let doc = "Wall-clock budget in seconds (a trailing 's' is accepted: 20s)." in
    Arg.(value & opt string "10" & info [ "budget" ] ~docv:"SECONDS" ~doc)
  in
  let max_rounds =
    let doc = "Stop after $(docv) chaos rounds even if budget remains." in
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let spares =
    let doc = "Spare physical rows available to the repair flow." in
    Arg.(value & opt int 2 & info [ "spares" ] ~docv:"N" ~doc)
  in
  let jobs =
    let doc = "Worker-pool size (default: cores - 1)." in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let out =
    let doc = "Write the JSON chaos report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE.json" ~doc)
  in
  let show_metrics =
    let doc = "Dump the metrics registry (counters, gauges, latency histograms) after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let doc = "Inject runtime faults and prove the detect/repair/re-verify loop heals them" in
  Cmd.v
    (Cmd.info "chaos" ~doc ~exits)
    Term.(const run $ seed $ budget $ max_rounds $ spares $ jobs $ out $ show_metrics $ trace_arg)

(* --- serve / loadgen ------------------------------------------------------ *)

let serve_cmd =
  let run sock pipe jobs queue_limit max_inflight max_tenants tenant_quota chunk max_batch
      show_metrics trace =
    with_tracing trace @@ fun () ->
    let cfg =
      {
        Serve.Server.default_config with
        jobs;
        queue_limit;
        max_inflight;
        max_tenants;
        tenant_quota;
        chunk_vectors = chunk;
        max_batch;
      }
    in
    let server = Serve.Server.create ~metrics:Runtime.Metrics.global cfg in
    let stop_signal _ = Serve.Server.request_stop server in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
     with Invalid_argument _ -> ());
    if pipe then begin
      (* stdin/stdout ARE the wire; all chatter goes to stderr *)
      Printf.eprintf "serve: single session on stdin/stdout (inflight %d, queue %d)\n%!"
        max_inflight queue_limit;
      Serve.Server.serve_session server stdin stdout
    end
    else begin
      Printf.printf "serve: listening on %s (inflight %d, queue %d, %d tenants x %d programs)\n%!"
        sock max_inflight queue_limit max_tenants tenant_quota;
      Serve.Server.run_unix server ~sock_path:sock
    end;
    Serve.Server.stop server;
    let s = Serve.Server.stats server in
    let err = if pipe then Printf.eprintf else Printf.printf in
    err
      "serve: %d sessions, %d requests (%d ok, %d errors), %d shed, %d vectors, %d session errors\n%!"
      s.Serve.Server.sessions_total s.Serve.Server.requests s.Serve.Server.responses_ok
      s.Serve.Server.request_errors
      (Serve.Admission.shed_total (Serve.Server.admission server))
      s.Serve.Server.vectors_evaluated s.Serve.Server.session_errors;
    if show_metrics then begin
      let oc = if pipe then stderr else stdout in
      output_string oc "--- metrics ---\n";
      output_string oc (Runtime.Metrics.dump Runtime.Metrics.global);
      flush oc
    end;
    0
  in
  let sock =
    let doc = "Unix-domain socket path to listen on." in
    Arg.(value & opt string "cnfet-serve.sock" & info [ "sock" ] ~docv:"PATH" ~doc)
  in
  let pipe =
    let doc =
      "Serve exactly one session on stdin/stdout instead of listening on a socket \
       (for tests, CI and inetd-style supervision)."
    in
    Arg.(value & flag & info [ "pipe" ] ~doc)
  in
  let jobs =
    let doc = "Evaluation-pool worker domains (default: cores - 1)." in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let queue_limit =
    let doc = "Admission wait-queue bound; beyond it requests are shed with Overloaded." in
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let max_inflight =
    let doc = "Requests allowed to compile/evaluate concurrently." in
    Arg.(value & opt int 8 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let max_tenants =
    let doc = "Tenant caches kept before whole-tenant LRU eviction." in
    Arg.(value & opt int 16 & info [ "max-tenants" ] ~docv:"N" ~doc)
  in
  let tenant_quota =
    let doc = "Compiled programs each tenant may cache (per-entry LRU within)." in
    Arg.(value & opt int 32 & info [ "tenant-quota" ] ~docv:"N" ~doc)
  in
  let chunk =
    let doc = "Result vectors per streamed chunk frame." in
    Arg.(value & opt int 512 & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let max_batch =
    let doc = "Input vectors accepted per request; more is Batch_too_large." in
    Arg.(value & opt int 65536 & info [ "max-batch" ] ~docv:"N" ~doc)
  in
  let show_metrics =
    let doc = "Dump the metrics registry after the daemon exits." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let doc = "Run the PLA evaluation service daemon" in
  Cmd.v
    (Cmd.info "serve" ~doc ~exits)
    Term.(
      const run $ sock $ pipe $ jobs $ queue_limit $ max_inflight $ max_tenants $ tenant_quota
      $ chunk $ max_batch $ show_metrics $ trace_arg)

let loadgen_cmd =
  let run sock concurrency tenants requests batch seed classify_share sweep out run_out trace
      =
    with_tracing trace @@ fun () ->
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX sock)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let out_fd = Unix.dup fd in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr out_fd in
      ( ic,
        oc,
        fun () ->
          close_out_noerr oc;
          close_in_noerr ic )
    in
    let run_point concurrency =
      let cfg =
        {
          Serve.Loadgen.connect;
          concurrency;
          tenants;
          requests_per_worker = requests;
          batch;
          seed;
          classify_share;
        }
      in
      let r = Serve.Loadgen.run ~label:(Printf.sprintf "c%d" concurrency) cfg in
      Printf.printf
        "c=%-3d  %6d req  %6.1f req/s  shed %5.1f%%  err %d  miscmp %d  p50 %.1fms  p95 %.1fms  p99 %.1fms\n%!"
        concurrency r.Serve.Loadgen.requests r.Serve.Loadgen.throughput_rps
        (100. *. r.Serve.Loadgen.shed_rate)
        r.Serve.Loadgen.errors r.Serve.Loadgen.miscompares
        (1e3 *. r.Serve.Loadgen.p50_s) (1e3 *. r.Serve.Loadgen.p95_s)
        (1e3 *. r.Serve.Loadgen.p99_s);
      r
    in
    let points =
      match sweep with
      | [] -> [ run_point concurrency ]
      | cs -> List.map run_point cs
    in
    let json =
      match points with
      | [ r ] -> Serve.Loadgen.to_json r
      | rs -> Serve.Loadgen.sweep_to_json rs
    in
    (match out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "report written to %s\n" path);
    let run_failed =
      match run_out with
      | None -> false
      | Some dir -> save_assess_run ~dir (Serve.Loadgen.to_run ~seed points)
    in
    let total f = List.fold_left (fun acc r -> acc + f r) 0 points in
    let miscompares = total (fun r -> r.Serve.Loadgen.miscompares) in
    let errors = total (fun r -> r.Serve.Loadgen.errors) in
    let completed = total (fun r -> r.Serve.Loadgen.completed) in
    if miscompares > 0 then begin
      Printf.eprintf "loadgen: FAIL - %d served outputs differed from direct Pla.eval\n" miscompares;
      1
    end
    else if errors > 0 then begin
      Printf.eprintf "loadgen: FAIL - %d requests errored\n" errors;
      1
    end
    else if completed = 0 then begin
      Printf.eprintf "loadgen: FAIL - nothing completed (all shed or server down?)\n";
      1
    end
    else if run_failed then 1
    else 0
  in
  let sock =
    let doc = "Unix-domain socket of the serve daemon." in
    Arg.(value & opt string "cnfet-serve.sock" & info [ "sock" ] ~docv:"PATH" ~doc)
  in
  let concurrency =
    let doc = "Closed-loop worker connections." in
    Arg.(value & opt int 8 & info [ "c"; "concurrency" ] ~docv:"N" ~doc)
  in
  let tenants =
    let doc = "Distinct tenant identities in the mix." in
    Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let requests =
    let doc = "Requests per worker." in
    Arg.(value & opt int 50 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let batch =
    let doc = "Input vectors per request." in
    Arg.(value & opt int 256 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "Workload seed; fixed seed = reproducible request sequence." in
    Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let classify_share =
    let doc =
      "Fraction of requests sent as classification against the server's \
       $(b,default) crossbar model, each reply label-checked against the \
       reference classifier (0 = eval-only traffic)."
    in
    Arg.(value & opt float 0.0 & info [ "classify" ] ~docv:"SHARE" ~doc)
  in
  let sweep =
    let doc =
      "Comma-separated concurrency sweep (e.g. 1,2,4,8,16); overrides $(b,--concurrency) and \
       emits a sweep JSON with the saturation point promoted."
    in
    Arg.(value & opt (list int) [] & info [ "sweep" ] ~docv:"N,N,..." ~doc)
  in
  let out =
    let doc = "Write BENCH_serve.json to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE.json" ~doc)
  in
  let doc = "Drive a running serve daemon closed-loop and verify every bit against Pla.eval" in
  Cmd.v
    (Cmd.info "loadgen" ~doc ~exits)
    Term.(
      const run $ sock $ concurrency $ tenants $ requests $ batch $ seed $ classify_share
      $ sweep $ out $ run_out_arg $ trace_arg)

let () =
  let doc = "programmable logic built from ambipolar carbon-nanotube FETs" in
  let info = Cmd.info "cnfet_tool" ~version:"1.0.0" ~doc ~exits in
  exit (Cmd.eval' (Cmd.group info [ minimize_cmd; area_cmd; simulate_cmd; phase_cmd; factor_cmd; map_cmd; fpga_cmd; yield_cmd; suite_cmd; bench_parallel_cmd; bench_espresso_cmd; bench_ab_cmd; sweep_cmd; classify_cmd; fuzz_cmd; chaos_cmd; serve_cmd; loadgen_cmd ]))
