(* Tests for the fault library: defect maps, defect-aware evaluation,
   repair by matching, Monte-Carlo yield. *)

module G = Cnfet.Gnor
module Plane = Cnfet.Plane
module Pla = Cnfet.Pla
module Cover = Logic.Cover
module Expr = Logic.Expr

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let cover_of_exprs n_in exprs = Expr.to_cover_multi ~n_in exprs

(* --- Defect maps ---------------------------------------------------------- *)

let test_defect_perfect () =
  let m = Fault.Defect.perfect ~rows:3 ~cols:4 in
  checki "no defects" 0 (Fault.Defect.defect_count m);
  checki "rows" 3 (Fault.Defect.rows m);
  checki "cols" 4 (Fault.Defect.cols m)

let test_defect_random_rate () =
  let rng = Util.Rng.create 1 in
  let m = Fault.Defect.random rng ~rows:50 ~cols:50 ~rate:0.1 () in
  let n = Fault.Defect.defect_count m in
  (* 2500 cells at 10%: expect ~250, allow wide slack. *)
  checkb "rate respected" true (n > 170 && n < 340)

let test_defect_rate_zero_and_one () =
  let rng = Util.Rng.create 2 in
  let none = Fault.Defect.random rng ~rows:10 ~cols:10 ~rate:0.0 () in
  checki "rate 0" 0 (Fault.Defect.defect_count none);
  let all = Fault.Defect.random rng ~rows:10 ~cols:10 ~rate:1.0 () in
  checki "rate 1" 100 (Fault.Defect.defect_count all)

let test_defect_closed_share () =
  let rng = Util.Rng.create 3 in
  let m = Fault.Defect.random rng ~rows:40 ~cols:40 ~rate:1.0 ~closed_share:0.0 () in
  let closed = ref 0 in
  for r = 0 to 39 do
    if Fault.Defect.row_has_stuck_closed m r then incr closed
  done;
  checki "no stuck-closed when share 0" 0 !closed

let test_defect_compatibility () =
  let m = Fault.Defect.perfect ~rows:1 ~cols:3 in
  let modes = [| G.Pass; G.Drop; G.Invert |] in
  checkb "perfect row compatible" true (Fault.Defect.compatible_and_row m ~row:0 modes);
  Fault.Defect.set m ~row:0 ~col:1 Fault.Defect.Stuck_open;
  checkb "stuck-open under Drop ok" true (Fault.Defect.compatible_and_row m ~row:0 modes);
  Fault.Defect.set m ~row:0 ~col:0 Fault.Defect.Stuck_open;
  checkb "stuck-open under Pass fails" false (Fault.Defect.compatible_and_row m ~row:0 modes);
  Fault.Defect.set m ~row:0 ~col:0 Fault.Defect.Stuck_closed;
  checkb "stuck-closed always fails" false (Fault.Defect.compatible_and_row m ~row:0 modes)

let test_defect_eval () =
  let plane = Plane.create ~rows:2 ~cols:2 in
  Plane.configure_row plane 0 [| G.Pass; G.Drop |];
  Plane.configure_row plane 1 [| G.Drop; G.Pass |];
  let m = Fault.Defect.perfect ~rows:2 ~cols:2 in
  (* No defects: matches plain eval. *)
  let inputs = [| false; true |] in
  Alcotest.check (Alcotest.array Alcotest.bool) "clean eval" (Plane.eval plane inputs)
    (Fault.Defect.eval_with_defects m plane inputs);
  (* Stuck-open on the only active crosspoint of row 0 makes it constant 1. *)
  Fault.Defect.set m ~row:0 ~col:0 Fault.Defect.Stuck_open;
  let out = Fault.Defect.eval_with_defects m plane [| true; true |] in
  checkb "stuck-open row floats high" true out.(0);
  (* Stuck-closed pins row 1 to 0 regardless of inputs. *)
  Fault.Defect.set m ~row:1 ~col:0 Fault.Defect.Stuck_closed;
  let out' = Fault.Defect.eval_with_defects m plane [| false; false |] in
  checkb "stuck-closed row constant 0" false out'.(1)

(* --- Repair -------------------------------------------------------------------- *)

let sample_pla () =
  (* Two products: x0 x1 and x0' x2. *)
  Pla.of_cover (cover_of_exprs 3 [ Expr.(v 0 && v 1 || (not_ (v 0) && v 2)) ])

let perfect_maps pla spares =
  let n_rows = Pla.num_products pla + spares in
  ( Fault.Defect.perfect ~rows:n_rows ~cols:(Plane.cols (Pla.and_plane pla)),
    Fault.Defect.perfect ~rows:(Plane.rows (Pla.or_plane pla)) ~cols:n_rows )

let test_repair_perfect_identity () =
  let pla = sample_pla () in
  let and_d, or_d = perfect_maps pla 0 in
  checkb "identity works on perfect array" true
    (Fault.Repair.identity_works ~and_defects:and_d ~or_defects:or_d pla);
  match Fault.Repair.repair ~and_defects:and_d ~or_defects:or_d pla with
  | Fault.Repair.Repaired _ -> ()
  | Fault.Repair.Unrepairable -> Alcotest.fail "perfect array must repair"

let test_repair_swaps_rows () =
  let pla = sample_pla () in
  let and_d, or_d = perfect_maps pla 0 in
  (* Kill row 0 for product 0 (which needs Pass/Invert at columns 0,1)
     but leave it fine for product 1 (Drop at column 1). *)
  Fault.Defect.set and_d ~row:0 ~col:1 Fault.Defect.Stuck_open;
  (* Product 0 uses column 1 (x1 literal): identity fails... *)
  checkb "identity broken" false
    (Fault.Repair.identity_works ~and_defects:and_d ~or_defects:or_d pla);
  match Fault.Repair.repair ~and_defects:and_d ~or_defects:or_d pla with
  | Fault.Repair.Repaired assignment ->
    checkb "products swapped" true (assignment.(0) <> 0);
    (* Verify the repaired PLA still computes the function. *)
    let f = cover_of_exprs 3 [ Expr.(v 0 && v 1 || (not_ (v 0) && v 2)) ] in
    let fixed = Fault.Repair.apply pla assignment ~rows:(Pla.num_products pla) in
    checkb "repaired PLA correct" true (Pla.verify_against fixed f)
  | Fault.Repair.Unrepairable -> Alcotest.fail "swap should repair"

let test_repair_uses_spares () =
  let pla = sample_pla () in
  let and_d, or_d = perfect_maps pla 1 in
  (* Make both original rows unusable for every product; the spare row 2
     remains perfect, so exactly one product can be saved — unrepairable.
     Then clean row 1 and verify the spare carries the load. *)
  Fault.Defect.set and_d ~row:0 ~col:0 Fault.Defect.Stuck_closed;
  Fault.Defect.set and_d ~row:1 ~col:0 Fault.Defect.Stuck_closed;
  (match Fault.Repair.repair ~spare_rows:1 ~and_defects:and_d ~or_defects:or_d pla with
  | Fault.Repair.Unrepairable -> ()
  | Fault.Repair.Repaired _ -> Alcotest.fail "two dead rows, one spare: unrepairable");
  Fault.Defect.set and_d ~row:1 ~col:0 Fault.Defect.Good;
  match Fault.Repair.repair ~spare_rows:1 ~and_defects:and_d ~or_defects:or_d pla with
  | Fault.Repair.Repaired assignment ->
    checkb "row 0 avoided" true (assignment.(0) <> 0 && assignment.(1) <> 0)
  | Fault.Repair.Unrepairable -> Alcotest.fail "spare should save it"

let test_repair_or_plane_constraints () =
  let pla = sample_pla () in
  let and_d, or_d = perfect_maps pla 0 in
  (* A stuck-closed OR crosspoint conducts on every evaluation and pins its
     output row low: the output is dead, no assignment can help. *)
  Fault.Defect.set or_d ~row:0 ~col:0 Fault.Defect.Stuck_closed;
  (match Fault.Repair.repair ~and_defects:and_d ~or_defects:or_d pla with
  | Fault.Repair.Unrepairable -> ()
  | Fault.Repair.Repaired _ -> Alcotest.fail "stuck-closed kills the output");
  checkb "identity also fails" false
    (Fault.Repair.identity_works ~and_defects:and_d ~or_defects:or_d pla);
  (* Stuck-open at OR(0, row): that row cannot carry any selected product. *)
  let and_d2, or_d2 = perfect_maps pla 0 in
  Fault.Defect.set or_d2 ~row:0 ~col:0 Fault.Defect.Stuck_open;
  Fault.Defect.set or_d2 ~row:0 ~col:1 Fault.Defect.Stuck_open;
  match Fault.Repair.repair ~and_defects:and_d2 ~or_defects:or_d2 pla with
  | Fault.Repair.Unrepairable -> ()
  | Fault.Repair.Repaired _ ->
    Alcotest.fail "both OR crosspoints stuck-open: output 0 unrealizable"

let test_repair_matching_beats_greedy_trap () =
  (* Construct a case where a greedy first-fit fails but augmenting paths
     succeed: product 0 fits rows {0,1}, product 1 fits only row 0. *)
  let f = cover_of_exprs 2 [ Expr.(v 0 || v 1) ] in
  (* products: x0 (uses col 0), x1 (uses col 1) *)
  let pla = Pla.of_cover f in
  let and_d, or_d = perfect_maps pla 0 in
  (* Row 1 rejects product with a literal at col 1. *)
  Fault.Defect.set and_d ~row:1 ~col:1 Fault.Defect.Stuck_open;
  match Fault.Repair.repair ~and_defects:and_d ~or_defects:or_d pla with
  | Fault.Repair.Repaired assignment ->
    (* The x1 product must take row 0; the other moves to row 1. *)
    let x1_product =
      (* find product using column 1 *)
      let p = Pla.and_plane pla in
      if Plane.mode p ~row:0 ~col:1 <> G.Drop then 0 else 1
    in
    checki "x1 product on clean row" 0 assignment.(x1_product)
  | Fault.Repair.Unrepairable -> Alcotest.fail "matching must find the swap"

let test_repair_apply_preserves_function_random () =
  let rng = Util.Rng.create 31 in
  for _ = 1 to 10 do
    let n_in = 2 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out:2 ~n_cubes:(2 + Util.Rng.int rng 5) ~dc_bias:0.4 in
    let pla = Pla.of_minimized f in
    let spares = 2 in
    let rows = Pla.num_products pla + spares in
    (* Random permutation assignment into the enlarged array. *)
    let perm = Array.init rows Fun.id in
    Util.Rng.shuffle rng perm;
    let assignment = Array.sub perm 0 (Pla.num_products pla) in
    let moved = Fault.Repair.apply pla assignment ~rows in
    checkb "moved PLA computes same function" true (Pla.verify_against moved f)
  done

(* --- Column permutation ------------------------------------------------------------ *)

let test_columns_identity_when_clean () =
  let pla = sample_pla () in
  let and_d, or_d = perfect_maps pla 0 in
  let rng = Util.Rng.create 11 in
  match
    Fault.Repair.repair_permuting_inputs rng ~and_defects:and_d ~or_defects:or_d pla
  with
  | Some o ->
    checkb "identity permutation kept" true
      (o.Fault.Repair.column_of_input = Array.init 3 Fun.id)
  | None -> Alcotest.fail "perfect array must repair"

let test_columns_rescue_unrepairable_rows () =
  (* A single product x0·x1' over 3 inputs (input 2 unused): a stuck-open
     under the x0 literal kills every row assignment under the identity
     column order, but moving logical input 0 onto the spare column 2
     repairs it. *)
  let f = cover_of_exprs 3 [ Expr.(v 0 && not_ (v 1)) ] in
  let pla = Cnfet.Pla.of_minimized f in
  checki "one product" 1 (Cnfet.Pla.num_products pla);
  let and_d, or_d = perfect_maps pla 0 in
  Fault.Defect.set and_d ~row:0 ~col:0 Fault.Defect.Stuck_open;
  (match Fault.Repair.repair ~and_defects:and_d ~or_defects:or_d pla with
  | Fault.Repair.Unrepairable -> ()
  | Fault.Repair.Repaired _ -> Alcotest.fail "row matching alone must fail");
  let rng = Util.Rng.create 12 in
  match
    Fault.Repair.repair_permuting_inputs rng ~attempts:500 ~and_defects:and_d ~or_defects:or_d
      pla
  with
  | Some o ->
    checkb "input 0 moved off column 0" true (o.Fault.Repair.column_of_input.(0) <> 0);
    (* Verify through the defects: build the physical PLA and evaluate with
       permuted input delivery. *)
    let rows = Cnfet.Pla.num_products pla in
    let physical = Fault.Repair.apply_with_columns pla o ~rows in
    let ok = ref true in
    for m = 0 to 7 do
      let x = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
      (* logical input i rides physical column column_of_input.(i) *)
      let y = Array.make 3 false in
      Array.iteri (fun i c -> y.(c) <- x.(i)) o.Fault.Repair.column_of_input;
      let products = Fault.Defect.eval_with_defects and_d (Cnfet.Pla.and_plane physical) y in
      let or_rows =
        Fault.Defect.eval_with_defects or_d (Cnfet.Pla.or_plane physical) products
      in
      let want = Logic.Cover.eval f x in
      for o' = 0 to 0 do
        let got =
          if Cnfet.Pla.output_inverted physical o' then not or_rows.(o') else or_rows.(o')
        in
        if got <> Util.Bitvec.get want o' then ok := false
      done
    done;
    checkb "permuted repair functional through defects" true !ok
  | None -> Alcotest.fail "column permutation must rescue this"

let test_matching_size_reports_partial () =
  let pla = sample_pla () in
  let and_d, or_d = perfect_maps pla 0 in
  let columns = Array.init 3 Fun.id in
  checki "clean array places both products" 2
    (Fault.Repair.matching_size ~and_defects:and_d ~or_defects:or_d ~columns pla);
  (* Kill both rows entirely. *)
  Fault.Defect.set and_d ~row:0 ~col:0 Fault.Defect.Stuck_closed;
  Fault.Defect.set and_d ~row:1 ~col:0 Fault.Defect.Stuck_closed;
  checki "no product placeable" 0
    (Fault.Repair.matching_size ~and_defects:and_d ~or_defects:or_d ~columns pla)

(* --- Xbar (interconnect defect tolerance) ------------------------------------------- *)

let test_xbar_stuck_open_blocks () =
  let m = Fault.Defect.perfect ~rows:2 ~cols:2 in
  Fault.Defect.set m ~row:0 ~col:0 Fault.Defect.Stuck_open;
  checkb "broken crosspoint unusable" false (Fault.Xbar.column_usable m ~row:0 ~col:0);
  checkb "same column other row fine" true (Fault.Xbar.column_usable m ~row:1 ~col:0)

let test_xbar_stuck_closed_free_switch () =
  let m = Fault.Defect.perfect ~rows:2 ~cols:2 in
  Fault.Defect.set m ~row:0 ~col:1 Fault.Defect.Stuck_closed;
  checkb "wanted connection is free" true (Fault.Xbar.column_usable m ~row:0 ~col:1);
  checkb "column dead for other rows" false (Fault.Xbar.column_usable m ~row:1 ~col:1)

let test_xbar_row_shorts () =
  let m = Fault.Defect.perfect ~rows:3 ~cols:3 in
  Fault.Defect.set m ~row:0 ~col:0 Fault.Defect.Stuck_closed;
  Fault.Defect.set m ~row:2 ~col:0 Fault.Defect.Stuck_closed;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "short detected" [ (0, 2) ] (Fault.Xbar.rows_shorted m);
  (* Both shorted rows demanded: unroutable no matter what. *)
  let demands = [ { Fault.Xbar.row = 0; label = 0 }; { Fault.Xbar.row = 2; label = 1 } ] in
  checkb "shorted demanded rows kill routing" true (Fault.Xbar.assign m demands = None);
  (* Only one of them demanded: fine (through another column). *)
  let demands' = [ { Fault.Xbar.row = 0; label = 0 }; { Fault.Xbar.row = 1; label = 1 } ] in
  checkb "single shorted row routable elsewhere" true (Fault.Xbar.assign m demands' <> None)

let test_xbar_assignment_avoids_defects () =
  let m = Fault.Defect.perfect ~rows:2 ~cols:3 in
  Fault.Defect.set m ~row:0 ~col:0 Fault.Defect.Stuck_open;
  Fault.Defect.set m ~row:1 ~col:1 Fault.Defect.Stuck_open;
  let demands = [ { Fault.Xbar.row = 0; label = 0 }; { Fault.Xbar.row = 1; label = 1 } ] in
  checkb "identity blocked" false (Fault.Xbar.identity_feasible m demands);
  (match Fault.Xbar.assign m demands with
  | Some pairs ->
    List.iter
      (fun (d, c) ->
        checkb "assigned column usable" true
          (Fault.Xbar.column_usable m ~row:d.Fault.Xbar.row ~col:c))
      pairs;
    let cols = List.map snd pairs in
    checkb "distinct columns" true (List.sort_uniq compare cols = List.sort compare cols)
  | None -> Alcotest.fail "assignment must exist");
  ()

let test_xbar_yield_ordering () =
  let rng = Util.Rng.create 17 in
  let pts = Fault.Xbar.yield_sweep rng ~trials:200 ~rows:8 ~cols:10 ~demands:8 [ 0.02; 0.08 ] in
  List.iter
    (fun p ->
      checkb "reassignment never hurts" true
        (p.Fault.Xbar.yield_assigned >= p.Fault.Xbar.yield_identity))
    pts;
  match pts with
  | [ a; b ] ->
    checkb "yield falls with rate" true
      (a.Fault.Xbar.yield_assigned >= b.Fault.Xbar.yield_assigned)
  | _ -> Alcotest.fail "two points"

(* --- Atpg --------------------------------------------------------------------------- *)

let test_atpg_fault_list () =
  let pla = sample_pla () in
  let faults = Fault.Atpg.all_faults pla in
  (* Every crosspoint has a stuck-closed fault; stuck-open only on
     programmed ones. *)
  let crosspoints = Cnfet.Pla.crosspoint_count pla in
  let programmed =
    Cnfet.Plane.used_crosspoints (Cnfet.Pla.and_plane pla)
    + Cnfet.Plane.used_crosspoints (Cnfet.Pla.or_plane pla)
  in
  checki "fault count" (crosspoints + programmed) (List.length faults)

let test_atpg_detection_semantics () =
  (* Single product x0·x1: stuck-open on the x0 crosspoint makes the
     product ignore x0 — vector 01 exposes it (good=0, faulty=1). *)
  let pla = Cnfet.Pla.of_cover (cover_of_exprs 2 [ Expr.(v 0 && v 1) ]) in
  let fault =
    { Fault.Atpg.plane = Fault.Atpg.And_plane; row = 0; col = 0; kind = Fault.Defect.Stuck_open }
  in
  checkb "01 exposes the dropped literal" true
    (Fault.Atpg.detects pla fault [| false; true |]);
  checkb "11 does not (both agree at 1)" false
    (Fault.Atpg.detects pla fault [| true; true |])

let test_atpg_complete_and_compact () =
  List.iter
    (fun f ->
      let pla = Cnfet.Pla.of_minimized f in
      let tests, undetectable = Fault.Atpg.generate pla in
      Alcotest.check (Alcotest.float 1e-9) "full coverage" 1.0
        (Fault.Atpg.coverage pla tests);
      (* Never more vectors than the input space; parity-like functions
         legitimately need most of it. *)
      checkb "bounded test set" true (List.length tests <= 1 lsl Cnfet.Pla.num_inputs pla);
      (* undetectable faults really are undetectable *)
      let n_in = Cnfet.Pla.num_inputs pla in
      List.iter
        (fun fault ->
          for m = 0 to (1 lsl n_in) - 1 do
            let v = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
            checkb "undetectable fault never detected" false
              (Fault.Atpg.detects pla fault v)
          done)
        undetectable)
    [ Mcnc.Generators.mux ~select_bits:2; Mcnc.Generators.gray ~bits:4 ]

let test_atpg_empty_tests_zero_coverage () =
  let pla = Cnfet.Pla.of_minimized (Mcnc.Generators.majority 5) in
  Alcotest.check (Alcotest.float 1e-9) "no vectors, no coverage" 0.0
    (Fault.Atpg.coverage pla [])

let test_atpg_input_limit () =
  checki "documented limit" 14 Fault.Atpg.input_limit;
  let pla_with n_in =
    let rng = Util.Rng.create 9 in
    Cnfet.Pla.of_cover (Cover.random rng ~n_in ~n_out:1 ~n_cubes:3 ~dc_bias:0.8)
  in
  (* At the limit both entry points still enumerate. *)
  let at_limit = pla_with Fault.Atpg.input_limit in
  checkb "coverage works at the limit" true (Fault.Atpg.coverage at_limit [] = 0.0);
  (* One past the limit, both raise the typed exception with the offending
     size in the payload. *)
  let over = pla_with (Fault.Atpg.input_limit + 1) in
  let expect_raise f =
    match f () with
    | _ -> Alcotest.fail "expected Too_many_inputs"
    | exception Fault.Atpg.Too_many_inputs { inputs; limit } ->
      checki "payload inputs" (Fault.Atpg.input_limit + 1) inputs;
      checki "payload limit" Fault.Atpg.input_limit limit
  in
  expect_raise (fun () -> Fault.Atpg.generate over);
  expect_raise (fun () -> Fault.Atpg.coverage over [])

(* --- Yield ------------------------------------------------------------------------ *)

let test_yield_zero_rate () =
  let pla = sample_pla () in
  let rng = Util.Rng.create 4 in
  let p = Fault.Yield.estimate rng ~trials:20 pla ~defect_rate:0.0 in
  Alcotest.check (Alcotest.float 1e-9) "baseline 1.0" 1.0 p.Fault.Yield.yield_baseline;
  Alcotest.check (Alcotest.float 1e-9) "spares 1.0" 1.0 p.Fault.Yield.yield_spares

let test_yield_ordering () =
  (* remap ≥ baseline, spares ≥ remap (statistically; use enough trials). *)
  let rng = Util.Rng.create 5 in
  let f = cover_of_exprs 4 [ Expr.(v 0 && v 1 || (v 2 && v 3) || (v 0 && v 3)) ] in
  let pla = Pla.of_cover f in
  let p = Fault.Yield.estimate rng ~trials:300 ~spare_rows:3 pla ~defect_rate:0.03 in
  checkb "remap ≥ baseline" true (p.Fault.Yield.yield_remap >= p.Fault.Yield.yield_baseline);
  checkb "spares ≥ remap - eps" true
    (p.Fault.Yield.yield_spares >= p.Fault.Yield.yield_remap -. 0.05);
  checkb "baseline below 1 at 3%" true (p.Fault.Yield.yield_baseline < 1.0)

let test_yield_monotone_in_rate () =
  let rng = Util.Rng.create 6 in
  let pla = sample_pla () in
  let pts = Fault.Yield.sweep rng ~trials:150 pla ~rates:[ 0.01; 0.1; 0.3 ] in
  match pts with
  | [ a; b; c ] ->
    checkb "yield decreasing in defect rate" true
      (a.Fault.Yield.yield_spares >= b.Fault.Yield.yield_spares
      && b.Fault.Yield.yield_spares >= c.Fault.Yield.yield_spares -. 0.05)
  | _ -> Alcotest.fail "three points"

let test_yield_sweep_rate_independence () =
  (* Regression for the historical threading bug: [sweep] used to feed
     one rng serially through the rate list, so inserting a rate shifted
     every later rate's trials. Streams are now keyed by (master draw,
     rate value): a rate's point must be bit-identical whatever company
     it keeps. *)
  let pla = sample_pla () in
  let sweep rates = Fault.Yield.sweep (Util.Rng.create 17) ~trials:60 pla ~rates in
  let alone = sweep [ 0.1 ] in
  let crowded = sweep [ 0.01; 0.05; 0.1; 0.2 ] in
  let point_at rate pts =
    List.find (fun p -> p.Fault.Yield.defect_rate = rate) pts
  in
  checkb "rate point survives list edits" true
    (point_at 0.1 alone = point_at 0.1 crowded);
  let reordered = sweep [ 0.2; 0.1; 0.05; 0.01 ] in
  checkb "rate point survives reordering" true
    (point_at 0.1 crowded = point_at 0.1 reordered)

let test_yield_sweep_with_is_sweep () =
  (* [sweep] must be [sweep_with] plugged with the default trial — same
     seed, same rng consumption order, bit-identical points. *)
  let pla = sample_pla () in
  let direct = Fault.Yield.sweep (Util.Rng.create 9) ~trials:50 pla ~rates:[ 0.02; 0.1 ] in
  let generic =
    Fault.Yield.sweep_with
      ~trial:(fun rng ~defect_rate -> Fault.Yield.trial rng ~spare_rows:2 pla ~defect_rate)
      (Util.Rng.create 9) ~trials:50 ~rates:[ 0.02; 0.1 ] ()
  in
  checkb "sweep = sweep_with(trial)" true (direct = generic)

(* --- typed errors ----------------------------------------------------------- *)

let test_repair_typed_errors () =
  let f = cover_of_exprs 3 [ Expr.(v 0 && v 1 || v 2) ] in
  let pla = Pla.of_cover f in
  let products = Pla.num_products pla in
  let and_cols = Cnfet.Plane.cols (Pla.and_plane pla) in
  let good_and = Fault.Defect.perfect ~rows:(products + 1) ~cols:and_cols in
  let good_or = Fault.Defect.perfect ~rows:(Pla.num_outputs pla) ~cols:(products + 1) in
  (match Fault.Repair.repair ~spare_rows:(-1) ~and_defects:good_and ~or_defects:good_or pla with
  | _ -> Alcotest.fail "negative spares must raise"
  | exception Fault.Repair.No_spare_rows { spare_rows; _ } -> checki "payload" (-1) spare_rows);
  let bad_and = Fault.Defect.perfect ~rows:products ~cols:and_cols in
  (match Fault.Repair.repair ~spare_rows:1 ~and_defects:bad_and ~or_defects:good_or pla with
  | _ -> Alcotest.fail "short AND map must raise"
  | exception Fault.Repair.Shape_mismatch { plane; expected_rows; got_rows; _ } ->
    checkb "names the AND plane" true (plane = Fault.Repair.And_side);
    checki "expected rows" (products + 1) expected_rows;
    checki "got rows" products got_rows);
  let bad_or = Fault.Defect.perfect ~rows:(Pla.num_outputs pla) ~cols:products in
  (match Fault.Repair.repair ~spare_rows:1 ~and_defects:good_and ~or_defects:bad_or pla with
  | _ -> Alcotest.fail "short OR map must raise"
  | exception Fault.Repair.Shape_mismatch { plane; _ } ->
    checkb "names the OR plane" true (plane = Fault.Repair.Or_side));
  (* The registered printer must name the call, not print a blank. *)
  (match Fault.Repair.repair ~spare_rows:1 ~and_defects:bad_and ~or_defects:good_or pla with
  | _ -> ()
  | exception e ->
    let s = Printexc.to_string e in
    checkb "printer names the module" true
      (String.length s > 10 && String.sub s 0 5 = "Fault"))

let test_xbar_typed_errors () =
  let m = Fault.Defect.perfect ~rows:4 ~cols:4 in
  let dup = [ { Fault.Xbar.row = 1; label = 0 }; { Fault.Xbar.row = 1; label = 1 } ] in
  (match Fault.Xbar.assign m dup with
  | _ -> Alcotest.fail "duplicate rows must raise"
  | exception Fault.Xbar.Duplicate_demand_row { row } -> checki "offending row" 1 row);
  let oob = [ { Fault.Xbar.row = 9; label = 0 } ] in
  (match Fault.Xbar.identity_feasible m oob with
  | _ -> Alcotest.fail "out-of-range row must raise"
  | exception Fault.Xbar.Demand_out_of_range { row; rows } ->
    checki "offending row" 9 row;
    checki "map rows" 4 rows);
  match Fault.Xbar.yield_sweep (Util.Rng.create 1) ~rows:3 ~cols:3 ~demands:5 [ 0.1 ] with
  | _ -> Alcotest.fail "oversubscribed sweep must raise"
  | exception Fault.Xbar.Bad_sweep_geometry { demands; rows; cols } ->
    checki "demands" 5 demands;
    checki "rows" 3 rows;
    checki "cols" 3 cols

let test_yield_functional_check () =
  let rng = Util.Rng.create 7 in
  let f = cover_of_exprs 3 [ Expr.(v 0 && v 1 || v 2) ] in
  let pla = Pla.of_cover f in
  (* With no defects, repair trivially succeeds and the function holds. *)
  (match Fault.Yield.functional_check rng pla f ~defect_rate:0.0 ~spare_rows:1 with
  | Some ok -> checkb "clean array functional" true ok
  | None -> Alcotest.fail "clean array must repair");
  (* At a moderate rate, whenever repair claims success the function must
     verify through the defects. *)
  let checked = ref 0 in
  for _ = 1 to 30 do
    match Fault.Yield.functional_check rng pla f ~defect_rate:0.05 ~spare_rows:2 with
    | Some ok ->
      incr checked;
      checkb "repaired really works through defects" true ok
    | None -> ()
  done;
  checkb "some repairs happened" true (!checked > 0)

let () =
  Alcotest.run "fault"
    [
      ( "defect",
        [
          Alcotest.test_case "perfect map" `Quick test_defect_perfect;
          Alcotest.test_case "random rate" `Quick test_defect_random_rate;
          Alcotest.test_case "rate 0 and 1" `Quick test_defect_rate_zero_and_one;
          Alcotest.test_case "closed share" `Quick test_defect_closed_share;
          Alcotest.test_case "row compatibility" `Quick test_defect_compatibility;
          Alcotest.test_case "defective evaluation" `Quick test_defect_eval;
        ] );
      ( "repair",
        [
          Alcotest.test_case "perfect identity" `Quick test_repair_perfect_identity;
          Alcotest.test_case "swaps rows" `Quick test_repair_swaps_rows;
          Alcotest.test_case "uses spares" `Quick test_repair_uses_spares;
          Alcotest.test_case "OR-plane constraints" `Quick test_repair_or_plane_constraints;
          Alcotest.test_case "matching beats greedy trap" `Quick
            test_repair_matching_beats_greedy_trap;
          Alcotest.test_case "apply preserves function" `Quick
            test_repair_apply_preserves_function_random;
        ] );
      ( "columns",
        [
          Alcotest.test_case "identity when clean" `Quick test_columns_identity_when_clean;
          Alcotest.test_case "rescues unrepairable rows" `Quick
            test_columns_rescue_unrepairable_rows;
          Alcotest.test_case "matching size partial" `Quick test_matching_size_reports_partial;
        ] );
      ( "xbar",
        [
          Alcotest.test_case "stuck-open blocks" `Quick test_xbar_stuck_open_blocks;
          Alcotest.test_case "stuck-closed free switch" `Quick
            test_xbar_stuck_closed_free_switch;
          Alcotest.test_case "row shorts" `Quick test_xbar_row_shorts;
          Alcotest.test_case "assignment avoids defects" `Quick
            test_xbar_assignment_avoids_defects;
          Alcotest.test_case "yield ordering" `Quick test_xbar_yield_ordering;
        ] );
      ( "atpg",
        [
          Alcotest.test_case "fault list" `Quick test_atpg_fault_list;
          Alcotest.test_case "detection semantics" `Quick test_atpg_detection_semantics;
          Alcotest.test_case "complete and compact" `Quick test_atpg_complete_and_compact;
          Alcotest.test_case "typed input-limit exception" `Quick test_atpg_input_limit;
          Alcotest.test_case "empty tests zero coverage" `Quick
            test_atpg_empty_tests_zero_coverage;
        ] );
      ( "yield",
        [
          Alcotest.test_case "zero rate" `Quick test_yield_zero_rate;
          Alcotest.test_case "ordering baseline/remap/spares" `Quick test_yield_ordering;
          Alcotest.test_case "monotone in rate" `Quick test_yield_monotone_in_rate;
          Alcotest.test_case "functional through defects" `Quick test_yield_functional_check;
          Alcotest.test_case "sweep_with generalizes sweep" `Quick test_yield_sweep_with_is_sweep;
          Alcotest.test_case "rate streams independent of list" `Quick
            test_yield_sweep_rate_independence;
        ] );
      ( "typed errors",
        [
          Alcotest.test_case "repair geometry exceptions" `Quick test_repair_typed_errors;
          Alcotest.test_case "xbar demand exceptions" `Quick test_xbar_typed_errors;
        ] );
    ]
