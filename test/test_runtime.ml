(* Tests for the runtime library: pool determinism (parallel results
   bit-identical to sequential), compiled-PLA cache semantics, metrics
   histogram percentiles, and failure propagation through the pool. *)

module Pla = Cnfet.Pla
module Cover = Logic.Cover
module Pool = Runtime.Pool
module Batch = Runtime.Batch
module Cache = Runtime.Cache
module Metrics = Runtime.Metrics
module Histogram = Runtime.Histogram

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)

let truth = Alcotest.array (Alcotest.array Alcotest.bool)

(* --- Pool determinism ----------------------------------------------------- *)

let seq_sweep f pla =
  let n = Pla.num_inputs pla in
  Array.init (1 lsl n) (fun m -> f pla (Batch.minterm n m))

let test_sweep_matches_sequential () =
  let pla = Pla.of_minimized (Mcnc.Generators.adder ~bits:2) in
  let reference = seq_sweep Pla.eval pla in
  Pool.with_pool ~jobs:4 (fun pool ->
      checkb "parallel eval sweep = sequential" true
        (Batch.sweep_pla pool pla = reference);
      (* Tiny chunks force many fan-in merges. *)
      checkb "chunk=1 sweep = sequential" true
        (Batch.sweep_pla ~chunk:1 pool pla = reference))

let test_hw_sweep_matches_sequential () =
  let pla = Pla.of_minimized (Mcnc.Generators.majority 3) in
  let hw = Pla.build_hw pla in
  let n = Pla.num_inputs pla in
  let reference = Array.init (1 lsl n) (fun m -> Pla.simulate_hw hw (Batch.minterm n m)) in
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.check truth "switch-level sweep = sequential" reference
        (Batch.sweep_pla_hw pool pla))

let test_jobs_invariance () =
  let pla = Pla.of_minimized (Mcnc.Generators.xor_n 4) in
  let with_jobs jobs = Pool.with_pool ~jobs (fun pool -> Batch.sweep_pla pool pla) in
  Alcotest.check truth "jobs=1 = jobs=4" (with_jobs 1) (with_jobs 4)

let test_monte_carlo_deterministic () =
  (* Same seed, different parallelism: the per-trial rngs depend only on
     the trial index, so the draws must be identical. *)
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        Batch.monte_carlo pool (Util.Rng.create 42) ~trials:97 (fun rng ->
            Util.Rng.int rng 1_000_000))
  in
  checkb "seeded MC identical across jobs" true (run 1 = run 3);
  (* And against a plain sequential fold over the same split discipline. *)
  let rngs = Batch.split_rngs (Util.Rng.create 42) 97 in
  let reference = Array.map (fun rng -> Util.Rng.int rng 1_000_000) rngs in
  checkb "seeded MC = sequential reference" true (run 4 = reference)

let test_yield_estimate_deterministic () =
  let pla = Pla.of_minimized (Mcnc.Generators.xor_n 3) in
  let point jobs =
    Pool.with_pool ~jobs (fun pool ->
        Batch.yield_estimate pool (Util.Rng.create 7) ~trials:60 ~spare_rows:2 pla
          ~defect_rate:0.05)
  in
  let p1 = point 1 and p4 = point 4 in
  checkf "baseline yield" p1.Fault.Yield.yield_baseline p4.Fault.Yield.yield_baseline;
  checkf "remap yield" p1.Fault.Yield.yield_remap p4.Fault.Yield.yield_remap;
  checkf "spares yield" p1.Fault.Yield.yield_spares p4.Fault.Yield.yield_spares;
  (* Sequential reference: fold Yield.trial over the same split rngs. *)
  let rngs = Batch.split_rngs (Util.Rng.create 7) 60 in
  let outcomes =
    Array.map (fun rng -> Fault.Yield.trial rng ~spare_rows:2 pla ~defect_rate:0.05) rngs
  in
  let ref_pt = Fault.Yield.point_of_outcomes ~defect_rate:0.05 outcomes in
  checkf "parallel = sequential trials" ref_pt.Fault.Yield.yield_spares
    p4.Fault.Yield.yield_spares

(* --- Cache ---------------------------------------------------------------- *)

let cmp2 = Mcnc.Generators.comparator ~bits:1
let dec2 = Mcnc.Generators.decoder ~bits:2

let test_cache_hit_miss () =
  let cache = Cache.create () in
  checkf "empty hit rate" 0.0 (Cache.hit_rate cache);
  let c1 = Cache.compile cache cmp2 in
  checki "first compile misses" 1 (Cache.misses cache);
  checki "no hits yet" 0 (Cache.hits cache);
  let _ = Cache.compile cache cmp2 in
  checki "same cover hits" 1 (Cache.hits cache);
  checki "still one miss" 1 (Cache.misses cache);
  (* A structurally equal but distinct Cover value must hit: the key is
     the content digest, not physical identity. *)
  let copy = Cover.make ~n_in:(Cover.num_inputs cmp2) ~n_out:(Cover.num_outputs cmp2) (Cover.cubes cmp2) in
  let _ = Cache.compile cache copy in
  checki "equal content hits" 2 (Cache.hits cache);
  let _ = Cache.compile cache dec2 in
  checki "different cover misses" 2 (Cache.misses cache);
  checki "two entries" 2 (Cache.size cache);
  (* Compiled evaluation agrees with the plain evaluator everywhere. *)
  let pla = Pla.of_cover cmp2 in
  let n = Cover.num_inputs cmp2 in
  for m = 0 to (1 lsl n) - 1 do
    let v = Batch.minterm n m in
    checkb "compiled = Pla.eval" true (Cache.eval c1 v = Pla.eval pla v)
  done

let test_cache_key_distinguishes_polarity () =
  (* Same cubes, different output polarity: must not collide. *)
  let k_plain = Cache.key_of_cover cmp2 in
  let inv = Array.make (Cover.num_outputs cmp2) false in
  inv.(0) <- true;
  let k_inv = Cache.key_of_cover ~inverted_outputs:inv cmp2 in
  checkb "polarity is part of the key" false (k_plain = k_inv);
  let cache = Cache.create () in
  let plain = Cache.compile cache cmp2 in
  let inverted = Cache.compile cache ~inverted_outputs:inv cmp2 in
  checki "distinct entries" 2 (Cache.size cache);
  let n = Cover.num_inputs cmp2 in
  let differs = ref false in
  for m = 0 to (1 lsl n) - 1 do
    let v = Batch.minterm n m in
    if Cache.eval plain v <> Cache.eval inverted v then differs := true
  done;
  checkb "polarity changes behaviour" true !differs

let test_cache_key_sensitive_to_cubes () =
  let a = Mcnc.Generators.xor_n 3 and b = Mcnc.Generators.majority 3 in
  checkb "different covers, different keys" false
    (Cache.key_of_cover a = Cache.key_of_cover b)

let test_cache_lru_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let covers = [| Mcnc.Generators.xor_n 2; Mcnc.Generators.xor_n 3; Mcnc.Generators.xor_n 4 |] in
  Array.iter (fun c -> ignore (Cache.compile cache c)) covers;
  checki "capacity respected" 2 (Cache.size cache);
  checki "one eviction" 1 (Cache.evictions cache);
  (* covers.(0) was least recently used, so it was the victim. *)
  let misses_before = Cache.misses cache in
  ignore (Cache.compile cache covers.(0));
  checki "evicted entry misses again" (misses_before + 1) (Cache.misses cache);
  ignore (Cache.compile cache covers.(2));
  checki "recent entry still hits" 1 (Cache.hits cache)

let test_cache_lru_touch_reorders () =
  (* Capacity-2 regression for the intrusive recency list: a cache hit
     must move the entry to most-recently-used, changing who the next
     eviction victim is. Eviction counts must match the old linear-scan
     implementation exactly. *)
  let cache = Cache.create ~capacity:2 () in
  let a = Mcnc.Generators.xor_n 2
  and b = Mcnc.Generators.xor_n 3
  and c = Mcnc.Generators.xor_n 4 in
  ignore (Cache.compile cache a);
  ignore (Cache.compile cache b);
  checki "no eviction while under capacity" 0 (Cache.evictions cache);
  (* Touch [a]: recency order becomes b < a, so inserting [c] must
     evict [b], not [a]. *)
  let _, hit_a = Cache.compile_hit cache a in
  checkb "touch is a hit" true hit_a;
  ignore (Cache.compile cache c);
  checki "exactly one eviction" 1 (Cache.evictions cache);
  checki "capacity still 2" 2 (Cache.size cache);
  let _, hit_a' = Cache.compile_hit cache a in
  checkb "touched entry survived" true hit_a';
  let misses_before = Cache.misses cache in
  let _, hit_b = Cache.compile_hit cache b in
  checkb "untouched entry was the victim" false hit_b;
  checki "victim recompiles as a miss" (misses_before + 1) (Cache.misses cache);
  (* Recompiling [b] at capacity evicted the tail again. *)
  checki "second eviction on reinsert" 2 (Cache.evictions cache)

let test_compile_of_pla_hit_status () =
  let cache = Cache.create () in
  let pla = Pla.of_cover cmp2 in
  let _, hit1 = Cache.compile_of_pla_hit cache pla in
  checkb "first of-planes compile misses" false hit1;
  (* A structurally identical but physically distinct PLA must hit: the
     key digests plane contents, not identity. *)
  let _, hit2 = Cache.compile_of_pla_hit cache (Pla.of_cover cmp2) in
  checkb "same plane content hits" true hit2;
  let _, hit3 = Cache.compile_of_pla_hit cache (Pla.of_cover dec2) in
  checkb "different plane content misses" false hit3

(* --- Bit-sliced (transposed) evaluation ------------------------------------ *)

let random_vectors rng ~n ~width =
  Array.init n (fun _ -> Array.init width (fun _ -> Util.Rng.bool rng))

let test_transpose_roundtrip () =
  let rng = Util.Rng.create 21 in
  List.iter
    (fun (width, lanes) ->
      let vecs = random_vectors rng ~n:(lanes + 2) ~width in
      let block = Cache.transpose vecs ~first:1 ~lanes in
      checki "one word per column" width (Array.length block.Cache.words);
      (* Bits at and above [lanes] must be zero in every word. *)
      Array.iter
        (fun w ->
          checkb "no stray high lanes" true
            (lanes >= Cache.lanes_per_word || w lsr lanes = 0))
        block.Cache.words;
      let back = Cache.untranspose block.Cache.words ~lanes:block.Cache.lanes in
      checkb "untranspose inverts transpose" true
        (back = Array.sub vecs 1 lanes))
    [ (1, 1); (7, 17); (64, 62); (9, 63); (80, 5) ]

let test_transpose_rejects_bad_input () =
  let ragged = [| [| true; false |]; [| true |] |] in
  (match Cache.transpose ragged ~first:0 ~lanes:2 with
  | _ -> Alcotest.fail "expected Invalid_argument on ragged batch"
  | exception Invalid_argument _ -> ());
  let ok = [| [| true |]; [| false |] |] in
  match Cache.transpose ok ~first:1 ~lanes:2 with
  | _ -> Alcotest.fail "expected Invalid_argument on out-of-range slice"
  | exception Invalid_argument _ -> ()

let test_eval_block_matches_scalar () =
  let rng = Util.Rng.create 33 in
  let cache = Cache.create () in
  List.iter
    (fun cover ->
      let compiled = Cache.compile cache cover in
      let width = Cover.num_inputs cover in
      List.iter
        (fun lanes ->
          let vecs = random_vectors rng ~n:lanes ~width in
          let block = Cache.transpose vecs ~first:0 ~lanes in
          let words = Cache.eval_block compiled block in
          let got = Cache.untranspose words ~lanes in
          let want = Array.map (Cache.eval compiled) vecs in
          Alcotest.check truth
            (Printf.sprintf "eval_block = eval (%d lanes)" lanes)
            want got)
        [ 1; 17; 62; 63 ])
    [ cmp2; Mcnc.Generators.majority 5; Mcnc.Generators.decoder ~bits:3 ]

let test_eval_batch_ragged_tail () =
  let rng = Util.Rng.create 55 in
  let cache = Cache.create () in
  let cover = Mcnc.Generators.adder ~bits:2 in
  let compiled = Cache.compile cache cover in
  let width = Cover.num_inputs cover in
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun n ->
          let vecs = random_vectors rng ~n ~width in
          let want = Array.map (Cache.eval compiled) vecs in
          Alcotest.check truth
            (Printf.sprintf "eval_batch n=%d" n)
            want
            (Batch.eval_batch pool compiled vecs);
          (* chunk=1 forces one fan-in merge per block. *)
          Alcotest.check truth
            (Printf.sprintf "eval_batch chunk=1 n=%d" n)
            want
            (Batch.eval_batch ~chunk:1 pool compiled vecs))
        [ 0; 1; 62; 63; 64; 127 ])

let test_sweep_compiled_blocked_matches_pla () =
  let cache = Cache.create () in
  List.iter
    (fun cover ->
      let compiled = Cache.compile cache cover in
      let pla = Pla.of_cover cover in
      let reference = seq_sweep Pla.eval pla in
      Pool.with_pool ~jobs:4 (fun pool ->
          Alcotest.check truth "blocked sweep_compiled = sequential" reference
            (Batch.sweep_compiled pool compiled);
          Alcotest.check truth "blocked chunk=1 = sequential" reference
            (Batch.sweep_compiled ~chunk:1 pool compiled)))
    (* 5 inputs: scalar-tail only (32 < 63). 7 inputs: two full blocks
       plus a ragged tail (128 = 2*63 + 2). *)
    [ Mcnc.Generators.majority 5; Mcnc.Generators.xor_n 7 ]

let test_block_corruption_detected () =
  (* Rotting only the bit-sliced arrays must trip the checksum: proves
     the integrity check covers the transposed form, not just the
     scalar rows. *)
  let cache = Cache.create () in
  let compiled = Cache.compile cache cmp2 in
  Cache.corrupt_block_for_test compiled;
  (match Cache.compile cache cmp2 with
  | _ -> Alcotest.fail "expected Corrupt_entry"
  | exception Cache.Corrupt_entry _ -> ());
  checki "corruption counted" 1 (Cache.corruptions cache);
  (* The rotten entry was evicted, so a retry recompiles cleanly. *)
  let fresh = Cache.compile cache cmp2 in
  let pla = Pla.of_cover cmp2 in
  let n = Cover.num_inputs cmp2 in
  for m = 0 to (1 lsl n) - 1 do
    let v = Batch.minterm n m in
    checkb "recompiled entry is sound" true (Cache.eval fresh v = Pla.eval pla v)
  done

(* --- Metrics -------------------------------------------------------------- *)

let test_histogram_percentiles_match_stats () =
  let h = Histogram.create () in
  (* Deterministic but unordered samples. *)
  let rng = Util.Rng.create 11 in
  let samples = List.init 137 (fun _ -> Util.Rng.float rng 100.0) in
  List.iter (Histogram.observe h) samples;
  checki "count" 137 (Histogram.count h);
  List.iter
    (fun p ->
      checkf (Printf.sprintf "p%g" p) (Util.Stats.percentile p samples)
        (Histogram.percentile h p))
    [ 0.0; 25.0; 50.0; 90.0; 95.0; 99.0; 100.0 ];
  let s = Histogram.summarize h in
  checkf "summary p50" (Util.Stats.percentile 50.0 samples) s.Histogram.p50;
  checkf "summary p99" (Util.Stats.percentile 99.0 samples) s.Histogram.p99

let test_metrics_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "test.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  checki "counter" 5 (Metrics.count c);
  let g = Metrics.gauge m "test.gauge" in
  Metrics.set_gauge g 2.5;
  checkf "gauge" 2.5 (Metrics.read_gauge g);
  Metrics.register_gauge m "test.cb" (fun () -> 7.0);
  checkb "callback gauge listed" true (List.mem_assoc "test.cb" (Metrics.gauges m));
  Metrics.observe m "test.lat" 0.5;
  Metrics.observe m "test.lat" 1.5;
  let summaries = Metrics.histograms m in
  let s = List.assoc "test.lat" summaries in
  checki "histogram n" 2 s.Histogram.n;
  checkf "histogram mean" 1.0 s.Histogram.mean;
  Metrics.reset m;
  checki "counter reset" 0 (Metrics.count c);
  checkb "callback survives reset" true (List.mem_assoc "test.cb" (Metrics.gauges m))

let test_pool_records_metrics () =
  let m = Metrics.create () in
  Pool.with_pool ~metrics:m ~jobs:2 (fun pool ->
      ignore (Pool.run_all pool (Array.init 10 (fun i () -> i * i))));
  checki "tasks counted" 10 (List.assoc "pool.tasks" (Metrics.counters m));
  let lat = List.assoc "pool.task_latency_s" (Metrics.histograms m) in
  checki "latency observed per task" 10 lat.Histogram.n

let test_histogram_empty () =
  let h = Histogram.create () in
  checki "empty count" 0 (Histogram.count h);
  checkf "empty mean" 0.0 (Histogram.mean h);
  checkf "empty percentile" 0.0 (Histogram.percentile h 50.0);
  let s = Histogram.summarize h in
  checki "summary n" 0 s.Histogram.n;
  checkf "summary mean" 0.0 s.Histogram.mean;
  checkf "summary min" 0.0 s.Histogram.min;
  checkf "summary max" 0.0 s.Histogram.max;
  checkf "summary p50" 0.0 s.Histogram.p50;
  checkf "summary p99" 0.0 s.Histogram.p99

let test_histogram_single_sample () =
  let h = Histogram.create () in
  Histogram.observe h 3.25;
  List.iter
    (fun p ->
      checkf (Printf.sprintf "p%.0f of singleton" p) 3.25 (Histogram.percentile h p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ];
  let s = Histogram.summarize h in
  checki "n" 1 s.Histogram.n;
  checkf "min = max = sample" 3.25 s.Histogram.min;
  checkf "max" 3.25 s.Histogram.max

let test_histogram_percentile_clamps () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 10.0; 20.0; 30.0; 40.0 ];
  (* Out-of-range p clamps to the extreme samples instead of indexing out
     of bounds. *)
  checkf "p=0 is the minimum" 10.0 (Histogram.percentile h 0.0);
  checkf "p<0 is the minimum" 10.0 (Histogram.percentile h (-5.0));
  checkf "p=100 is the maximum" 40.0 (Histogram.percentile h 100.0);
  checkf "p>100 is the maximum" 40.0 (Histogram.percentile h 150.0)

let test_incr_named_across_domains () =
  let m = Metrics.create () in
  let per_domain = 5_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr_named m "smoke.hits"
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  checki "4 domains x 5000 increments" (4 * per_domain)
    (List.assoc "smoke.hits" (Metrics.counters m))

let test_span_observer_feeds_histogram () =
  let m = Metrics.create () in
  Metrics.span_observer m ~name:"unit.work" ~dur_s:0.25;
  Metrics.span_observer m ~name:"unit.work" ~dur_s:0.75;
  let s = List.assoc "span.unit.work" (Metrics.histograms m) in
  checki "two spans observed" 2 s.Histogram.n;
  checkf "mean duration" 0.5 s.Histogram.mean

(* --- Failure propagation -------------------------------------------------- *)

exception Boom of int

let test_batch_reports_smallest_failing_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let items = Array.init 64 (fun i -> i) in
      (match
         Batch.map ~chunk:1 pool
           (fun i -> if i = 13 || i = 57 then raise (Boom i) else i)
           items
       with
      | _ -> Alcotest.fail "expected Item_failed"
      | exception Batch.Item_failed { index; exn = Boom b } ->
        checki "smallest failing index" 13 index;
        checki "original exception payload" 13 b
      | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e));
      (* The pool survives a failed batch: later work still runs. *)
      let r = Batch.map pool (fun i -> i + 1) (Array.init 8 (fun i -> i)) in
      checkb "pool usable after failure" true (r = Array.init 8 (fun i -> i + 1)))

let test_await_reraises () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let fut = Pool.submit pool (fun () -> raise (Boom 3)) in
      (match Pool.await fut with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 3 -> ());
      let ok = Pool.submit pool (fun () -> 21 * 2) in
      checki "pool survives a raising task" 42 (Pool.await ok))

let test_submit_after_shutdown_rejected () =
  let pool = Pool.create ~jobs:1 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  match Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_drain_finishes_queued () =
  let pool = Pool.create ~jobs:1 () in
  let counter = Atomic.make 0 in
  let futs =
    List.init 6 (fun _ ->
        Pool.submit pool (fun () ->
            Thread.delay 0.005;
            Atomic.incr counter))
  in
  Pool.drain pool;
  Pool.drain pool (* idempotent *);
  checki "every queued task ran before drain returned" 6 (Atomic.get counter);
  List.iter Pool.await futs

let test_shutdown_poisons_queued () =
  let pool = Pool.create ~jobs:1 () in
  let started = Atomic.make false in
  let gate = Atomic.make false in
  let first =
    Pool.submit pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get gate) do
          Thread.delay 0.001
        done;
        1)
  in
  while not (Atomic.get started) do
    Thread.delay 0.001
  done;
  (* the only worker is pinned on [first]; these stay queued *)
  let queued = List.init 3 (fun i -> Pool.submit pool (fun () -> i)) in
  let stopper = Thread.create (fun () -> Pool.shutdown pool) () in
  Thread.delay 0.02;
  Atomic.set gate true;
  Thread.join stopper;
  checki "inflight task still finished" 1 (Pool.await first);
  List.iter
    (fun f ->
      match Pool.await f with
      | _ -> Alcotest.fail "queued-unstarted task must fail with Pool.Shutdown"
      | exception Pool.Shutdown -> ())
    queued

let test_concurrent_stoppers () =
  let pool = Pool.create ~jobs:2 () in
  ignore (Pool.submit pool (fun () -> Thread.delay 0.01));
  (* drain and shutdown racing from four threads: all must return, and
     only to a fully-stopped pool *)
  let stoppers =
    List.init 4 (fun i ->
        Thread.create (fun () -> if i mod 2 = 0 then Pool.shutdown pool else Pool.drain pool) ())
  in
  List.iter Thread.join stoppers;
  match Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "runtime"
    [
      ( "pool determinism",
        [
          Alcotest.test_case "PLA sweep = sequential" `Quick test_sweep_matches_sequential;
          Alcotest.test_case "switch-level sweep = sequential" `Quick
            test_hw_sweep_matches_sequential;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
          Alcotest.test_case "seeded Monte-Carlo" `Quick test_monte_carlo_deterministic;
          Alcotest.test_case "yield estimate" `Quick test_yield_estimate_deterministic;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "polarity in key" `Quick test_cache_key_distinguishes_polarity;
          Alcotest.test_case "cube content in key" `Quick test_cache_key_sensitive_to_cubes;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "LRU touch reorders recency" `Quick
            test_cache_lru_touch_reorders;
          Alcotest.test_case "of-planes hit status" `Quick test_compile_of_pla_hit_status;
        ] );
      ( "bit-sliced eval",
        [
          Alcotest.test_case "transpose round-trip" `Quick test_transpose_roundtrip;
          Alcotest.test_case "transpose input validation" `Quick
            test_transpose_rejects_bad_input;
          Alcotest.test_case "eval_block = scalar eval" `Quick test_eval_block_matches_scalar;
          Alcotest.test_case "eval_batch ragged tail" `Quick test_eval_batch_ragged_tail;
          Alcotest.test_case "blocked sweep_compiled" `Quick
            test_sweep_compiled_blocked_matches_pla;
          Alcotest.test_case "sliced-array corruption detected" `Quick
            test_block_corruption_detected;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles = Util.Stats" `Quick
            test_histogram_percentiles_match_stats;
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_and_gauges;
          Alcotest.test_case "pool instrumentation" `Quick test_pool_records_metrics;
          Alcotest.test_case "empty histogram" `Quick test_histogram_empty;
          Alcotest.test_case "single-sample histogram" `Quick test_histogram_single_sample;
          Alcotest.test_case "percentile clamping" `Quick test_histogram_percentile_clamps;
          Alcotest.test_case "incr_named across domains" `Quick test_incr_named_across_domains;
          Alcotest.test_case "span observer histograms" `Quick test_span_observer_feeds_histogram;
        ] );
      ( "failures",
        [
          Alcotest.test_case "smallest failing index" `Quick
            test_batch_reports_smallest_failing_index;
          Alcotest.test_case "await re-raises" `Quick test_await_reraises;
          Alcotest.test_case "submit after shutdown" `Quick test_submit_after_shutdown_rejected;
        ] );
      ( "stop protocol",
        [
          Alcotest.test_case "drain finishes queued work" `Quick test_drain_finishes_queued;
          Alcotest.test_case "shutdown poisons queued-unstarted" `Quick
            test_shutdown_poisons_queued;
          Alcotest.test_case "concurrent stoppers" `Quick test_concurrent_stoppers;
        ] );
    ]
