(* Tests for the benchmark suite: recorded profiles (Table 1 inputs),
   exactly-generated classic functions, synthetic profile matching. *)

module Cover = Logic.Cover
module Tt = Logic.Truth_table

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Profiles -------------------------------------------------------------- *)

let test_profiles_recorded () =
  checki "max46 inputs" 9 Mcnc.Profiles.max46.Mcnc.Profiles.n_in;
  checki "max46 outputs" 1 Mcnc.Profiles.max46.Mcnc.Profiles.n_out;
  checki "max46 products" 46 Mcnc.Profiles.max46.Mcnc.Profiles.n_products;
  checki "apla inputs" 10 Mcnc.Profiles.apla.Mcnc.Profiles.n_in;
  checki "apla outputs" 12 Mcnc.Profiles.apla.Mcnc.Profiles.n_out;
  checki "apla products" 25 Mcnc.Profiles.apla.Mcnc.Profiles.n_products;
  checki "t2 inputs" 17 Mcnc.Profiles.t2.Mcnc.Profiles.n_in;
  checki "t2 outputs" 16 Mcnc.Profiles.t2.Mcnc.Profiles.n_out;
  checki "t2 products" 52 Mcnc.Profiles.t2.Mcnc.Profiles.n_products

let test_profiles_reproduce_table1 () =
  (* The whole point of the recorded profiles: they regenerate the paper's
     Table 1 exactly through the area model. *)
  let expect =
    [ ("max46", 34960, 87400, 27600); ("apla", 32000, 80000, 33000); ("t2", 104000, 260000, 102960) ]
  in
  List.iter2
    (fun p (name, flash, eeprom, cnfet) ->
      let prof =
        {
          Cnfet.Area.n_in = p.Mcnc.Profiles.n_in;
          n_out = p.Mcnc.Profiles.n_out;
          n_products = p.Mcnc.Profiles.n_products;
        }
      in
      Alcotest.check Alcotest.string "order" name p.Mcnc.Profiles.name;
      checki (name ^ " flash") flash (Cnfet.Area.pla_area Device.Tech.flash prof);
      checki (name ^ " eeprom") eeprom (Cnfet.Area.pla_area Device.Tech.eeprom prof);
      checki (name ^ " cnfet") cnfet (Cnfet.Area.pla_area Device.Tech.cnfet prof))
    Mcnc.Profiles.table1 expect

let test_profiles_find () =
  checkb "find hit" true (Mcnc.Profiles.find "apla" = Some Mcnc.Profiles.apla);
  checkb "find miss" true (Mcnc.Profiles.find "nope" = None)

(* --- Generators -------------------------------------------------------------- *)

let test_rd53_shape () =
  let f = Mcnc.Generators.rd ~n:5 in
  checki "5 inputs" 5 (Cover.num_inputs f);
  checki "3 outputs" 3 (Cover.num_outputs f);
  (* rd53's known espresso result: 31 products. *)
  checki "espresso products" 31 (Cover.size (Espresso.Minimize.cover f))

let test_rd_correct () =
  let f = Mcnc.Generators.rd ~n:4 in
  let tt = Tt.of_cover f in
  for m = 0 to 15 do
    let ones =
      let rec go k acc = if k >= 4 then acc else go (k + 1) (acc + ((m lsr k) land 1)) in
      go 0 0
    in
    for o = 0 to Cover.num_outputs f - 1 do
      checkb "count encoding" ((ones lsr o) land 1 = 1) (Tt.get tt ~minterm:m ~output:o)
    done
  done

let test_xor_worst_case () =
  let f = Mcnc.Generators.xor_n 6 in
  (* Parity admits no merging: 2^(n-1) products both raw and minimized. *)
  checki "xor6 minterms" 32 (Cover.size f);
  checki "xor6 minimized" 32 (Cover.size (Espresso.Minimize.cover f))

let test_majority_products () =
  let f = Mcnc.Generators.majority 5 in
  (* maj5 optimum: C(5,3) = 10 products of 3 literals. *)
  let m = Espresso.Minimize.cover f in
  checki "maj5 products" 10 (Cover.size m);
  checki "3 literals each" 30 (Cover.literal_total m)

let test_adder_correct () =
  let f = Mcnc.Generators.adder ~bits:2 in
  let tt = Tt.of_cover f in
  for m = 0 to 15 do
    let a = m land 3 and b = (m lsr 2) land 3 in
    let sum = a + b in
    for o = 0 to 2 do
      checkb "sum bit" ((sum lsr o) land 1 = 1) (Tt.get tt ~minterm:m ~output:o)
    done
  done

let test_comparator_one_hot () =
  let f = Mcnc.Generators.comparator ~bits:2 in
  let tt = Tt.of_cover f in
  for m = 0 to 15 do
    let hits = ref 0 in
    for o = 0 to 2 do
      if Tt.get tt ~minterm:m ~output:o then incr hits
    done;
    checki "exactly one of <,=,>" 1 !hits
  done

let test_decoder_one_hot () =
  let f = Mcnc.Generators.decoder ~bits:3 in
  checki "8 outputs" 8 (Cover.num_outputs f);
  let tt = Tt.of_cover f in
  for m = 0 to 7 do
    for o = 0 to 7 do
      checkb "one-hot" (m = o) (Tt.get tt ~minterm:m ~output:o)
    done
  done;
  (* A decoder is already minimal: 8 products. *)
  checki "8 products" 8 (Cover.size (Espresso.Minimize.cover f))

let test_mux_minimal () =
  let f = Mcnc.Generators.mux ~select_bits:2 in
  checki "6 inputs" 6 (Cover.num_inputs f);
  checki "4 products" 4 (Cover.size (Espresso.Minimize.cover f))

let test_priority_encoder_correct () =
  let f = Mcnc.Generators.priority_encoder ~bits:2 in
  let tt = Tt.of_cover f in
  for m = 0 to 15 do
    let first =
      let rec go i = if i >= 4 then None else if m land (1 lsl i) <> 0 then Some i else go (i + 1) in
      go 0
    in
    (match first with
    | None ->
      for o = 0 to 2 do
        checkb "idle all zero" false (Tt.get tt ~minterm:m ~output:o)
      done
    | Some idx ->
      checkb "valid set" true (Tt.get tt ~minterm:m ~output:2);
      for o = 0 to 1 do
        checkb "index bits" ((idx lsr o) land 1 = 1) (Tt.get tt ~minterm:m ~output:o)
      done)
  done

let test_gray_correct () =
  let f = Mcnc.Generators.gray ~bits:4 in
  let tt = Tt.of_cover f in
  for m = 0 to 15 do
    let g = m lxor (m lsr 1) in
    for o = 0 to 3 do
      checkb "gray bit" ((g lsr o) land 1 = 1) (Tt.get tt ~minterm:m ~output:o)
    done
  done;
  (* Consecutive codes differ in exactly one bit. *)
  let code m =
    let g = ref 0 in
    for o = 3 downto 0 do
      g := (2 * !g) + if Tt.get tt ~minterm:m ~output:o then 1 else 0
    done;
    !g
  in
  for m = 0 to 14 do
    let diff = code m lxor code (m + 1) in
    checkb "one-bit steps" true (diff land (diff - 1) = 0 && diff <> 0)
  done

let test_bcd7seg_digits () =
  let f = Mcnc.Generators.bcd7seg () in
  let tt = Tt.of_cover f in
  let segments d =
    let s = ref 0 in
    for o = 6 downto 0 do
      s := (2 * !s) + if Tt.get tt ~minterm:d ~output:o then 1 else 0
    done;
    !s
  in
  checki "digit 0 pattern" 0x3F (segments 0);
  checki "digit 1 pattern" 0x06 (segments 1);
  checki "digit 8 lights all" 0x7F (segments 8);
  for d = 10 to 15 do
    checki "non-digits dark" 0 (segments d)
  done

let test_alu_slice_ops () =
  let f = Mcnc.Generators.alu_slice () in
  let tt = Tt.of_cover f in
  let run a b op =
    let m = a lor (b lsl 2) lor (op lsl 4) in
    let r =
      (if Tt.get tt ~minterm:m ~output:0 then 1 else 0)
      lor if Tt.get tt ~minterm:m ~output:1 then 2 else 0
    in
    let carry = Tt.get tt ~minterm:m ~output:2 in
    (r, carry)
  in
  checkb "1+1=2 nc" true (run 1 1 0 = (2, false));
  checkb "3+2=1 carry" true (run 3 2 0 = (1, true));
  checkb "1-2 borrows" true (snd (run 1 2 1));
  checkb "and" true (run 3 2 2 = (2, false));
  checkb "xor" true (run 3 1 3 = (2, false))

let test_all_suite_minimizes_correctly () =
  List.iter
    (fun (name, f) ->
      let m = Espresso.Minimize.cover f in
      checkb (name ^ " preserved") true (Tt.equal (Tt.of_cover f) (Tt.of_cover m)))
    Mcnc.Generators.all

let test_generators_reject_bad_sizes () =
  checkb "rd too big" true
    (try
       ignore (Mcnc.Generators.rd ~n:20);
       false
     with Invalid_argument _ -> true);
  checkb "majority even" true
    (try
       ignore (Mcnc.Generators.majority 4);
       false
     with Invalid_argument _ -> true)

(* --- Synthetic --------------------------------------------------------------- *)

let test_synthetic_hits_targets () =
  let rng = Util.Rng.create 2024 in
  List.iter
    (fun r ->
      let target = r.Mcnc.Synthetic.profile.Mcnc.Profiles.n_products in
      let achieved = r.Mcnc.Synthetic.achieved_products in
      checkb
        (r.Mcnc.Synthetic.profile.Mcnc.Profiles.name ^ " within 10% of target")
        true
        (abs (achieved - target) <= max 1 (target / 10)))
    (Mcnc.Synthetic.table1_set rng)

let test_synthetic_arity () =
  let rng = Util.Rng.create 3 in
  let r = Mcnc.Synthetic.with_profile rng Mcnc.Profiles.apla in
  checki "inputs" 10 (Cover.num_inputs r.Mcnc.Synthetic.on_set);
  checki "outputs" 12 (Cover.num_outputs r.Mcnc.Synthetic.on_set)

let test_synthetic_minimized_equivalent () =
  let rng = Util.Rng.create 4 in
  let r = Mcnc.Synthetic.with_profile rng Mcnc.Profiles.max46 in
  checkb "minimized ≡ on_set" true
    (Tt.equal (Tt.of_cover r.Mcnc.Synthetic.on_set) (Tt.of_cover r.Mcnc.Synthetic.minimized))

let test_synthetic_sweep_grid_corners () =
  (* The corners of the population sweep's profile grid
     (Sweep.Drive.default_space: inputs 5–10, outputs 1–8, products
     8–32): with_profile must land within the documented tolerance at
     the extremes of every dimension, not just at the Table-1 shapes. *)
  List.iteri
    (fun k (n_in, n_out, n_products) ->
      let profile =
        { Mcnc.Profiles.name = Printf.sprintf "corner-%dx%dx%d" n_in n_out n_products;
          n_in; n_out; n_products }
      in
      let r = Mcnc.Synthetic.with_profile (Util.Rng.create (500 + k)) profile in
      checki (profile.Mcnc.Profiles.name ^ " inputs") n_in
        (Cover.num_inputs r.Mcnc.Synthetic.on_set);
      checki (profile.Mcnc.Profiles.name ^ " outputs") n_out
        (Cover.num_outputs r.Mcnc.Synthetic.on_set);
      checkb (profile.Mcnc.Profiles.name ^ " within 10% of target") true
        (abs (r.Mcnc.Synthetic.achieved_products - n_products) <= max 1 (n_products / 10));
      checkb (profile.Mcnc.Profiles.name ^ " minimized equivalent") true
        (Tt.equal (Tt.of_cover r.Mcnc.Synthetic.on_set) (Tt.of_cover r.Mcnc.Synthetic.minimized)))
    [
      (5, 1, 8);   (* min/min/min *)
      (5, 8, 8);   (* widest outputs at the narrowest inputs *)
      (10, 1, 8);  (* sparse: few products over the widest inputs *)
      (10, 8, 8);  (* wide both ways, few products *)
      (10, 1, 32); (* max products at max inputs *)
      (10, 8, 32); (* max/max/max *)
    ];
  (* Over-dense corner: 32 minimized products cannot exist over 5 inputs
     and 1 output (espresso merges below that; the worst case, parity, is
     16). with_profile saturates — achieved lands under target — but the
     manufactured cover must still be honest about it and semantically
     sound. *)
  let dense = { Mcnc.Profiles.name = "corner-5x1x32"; n_in = 5; n_out = 1; n_products = 32 } in
  let r = Mcnc.Synthetic.with_profile (Util.Rng.create 600) dense in
  checkb "over-dense corner saturates below target" true
    (r.Mcnc.Synthetic.achieved_products >= 1 && r.Mcnc.Synthetic.achieved_products < 32);
  checkb "over-dense corner reports truthfully" true
    (r.Mcnc.Synthetic.achieved_products = Cover.size r.Mcnc.Synthetic.minimized);
  checkb "over-dense corner minimized equivalent" true
    (Tt.equal (Tt.of_cover r.Mcnc.Synthetic.on_set) (Tt.of_cover r.Mcnc.Synthetic.minimized))

let test_export_suite () =
  let dir = Filename.temp_file "cnfet_suite" "" in
  Sys.remove dir;
  let written = Mcnc.Export.write_suite ~dir in
  checkb "all entries written" true (List.length written >= 15);
  (* Parse one back and check equivalence through both formats. *)
  let rd53_path = List.assoc "rd53" written in
  let spec = Logic.Pla_io.parse_file rd53_path in
  checkb "pla file equivalent" true
    (Cover.equivalent (Mcnc.Generators.rd ~n:5) spec.Logic.Pla_io.on_set);
  let blif = Logic.Blif.parse_file (Filename.concat dir "rd53.blif") in
  checkb "blif file equivalent" true
    (Cover.equivalent (Mcnc.Generators.rd ~n:5) (Logic.Blif.to_cover blif));
  (* Clean up. *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_synthetic_deterministic () =
  let a = Mcnc.Synthetic.with_profile (Util.Rng.create 5) Mcnc.Profiles.apla in
  let b = Mcnc.Synthetic.with_profile (Util.Rng.create 5) Mcnc.Profiles.apla in
  checkb "same seed same function" true
    (Cover.equal_as_sets a.Mcnc.Synthetic.on_set b.Mcnc.Synthetic.on_set)

let () =
  Alcotest.run "mcnc"
    [
      ( "profiles",
        [
          Alcotest.test_case "recorded values" `Quick test_profiles_recorded;
          Alcotest.test_case "reproduce Table 1" `Quick test_profiles_reproduce_table1;
          Alcotest.test_case "find" `Quick test_profiles_find;
        ] );
      ( "generators",
        [
          Alcotest.test_case "rd53 shape" `Quick test_rd53_shape;
          Alcotest.test_case "rd correctness" `Quick test_rd_correct;
          Alcotest.test_case "xor worst case" `Quick test_xor_worst_case;
          Alcotest.test_case "majority products" `Quick test_majority_products;
          Alcotest.test_case "adder correctness" `Quick test_adder_correct;
          Alcotest.test_case "comparator one-hot" `Quick test_comparator_one_hot;
          Alcotest.test_case "decoder one-hot" `Quick test_decoder_one_hot;
          Alcotest.test_case "mux minimal" `Quick test_mux_minimal;
          Alcotest.test_case "priority encoder" `Quick test_priority_encoder_correct;
          Alcotest.test_case "gray code" `Quick test_gray_correct;
          Alcotest.test_case "bcd to 7-segment" `Quick test_bcd7seg_digits;
          Alcotest.test_case "alu slice" `Quick test_alu_slice_ops;
          Alcotest.test_case "suite minimizes correctly" `Quick
            test_all_suite_minimizes_correctly;
          Alcotest.test_case "rejects bad sizes" `Quick test_generators_reject_bad_sizes;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "hits targets" `Quick test_synthetic_hits_targets;
          Alcotest.test_case "arity" `Quick test_synthetic_arity;
          Alcotest.test_case "minimized equivalent" `Quick test_synthetic_minimized_equivalent;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "sweep grid corners" `Quick test_synthetic_sweep_grid_corners;
        ] );
      ("export", [ Alcotest.test_case "suite roundtrip" `Quick test_export_suite ]);
    ]
