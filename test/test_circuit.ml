(* Tests for the circuit library: value lattice, netlists, switch-level
   simulation (static and dynamic), Elmore delay. *)

module V = Circuit.Value
module N = Circuit.Netlist
module Sim = Circuit.Sim
module A = Device.Ambipolar

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-18)

(* --- Value lattice --------------------------------------------------------- *)

let test_value_merge_strength () =
  let m = V.merge V.supply1 (V.charged V.L0) in
  checkb "supply beats charge" true (V.equal m V.supply1);
  let m2 = V.merge (V.driven V.L0) (V.charged V.L1) in
  checkb "driven beats charge" true (V.equal m2 (V.driven V.L0))

let test_value_merge_conflict () =
  let m = V.merge (V.driven V.L0) (V.driven V.L1) in
  checkb "equal strength conflict is X" true (m.V.level = V.X && m.V.strength = V.Driven)

let test_value_merge_charge_sharing () =
  let m = V.merge (V.charged V.L0) (V.charged V.L1) in
  checkb "charge sharing gives X" true (m.V.level = V.X)

let test_value_merge_floating_identity () =
  let m = V.merge V.floating (V.charged V.L1) in
  checkb "floating loses" true (V.equal m (V.charged V.L1))

let test_value_weaken () =
  checkb "driven decays to charged" true
    (V.equal (V.weaken (V.driven V.L1)) (V.charged V.L1));
  checkb "supply decays to charged" true (V.equal (V.weaken V.supply0) (V.charged V.L0));
  checkb "charged unchanged" true (V.equal (V.weaken (V.charged V.L1)) (V.charged V.L1))

let test_value_to_bool () =
  checkb "1" true (V.to_bool V.supply1 = Some true);
  checkb "0" true (V.to_bool (V.charged V.L0) = Some false);
  checkb "X" true (V.to_bool (V.driven V.X) = None);
  checkb "floating" true (V.to_bool V.floating = None)

(* --- Netlist ----------------------------------------------------------------- *)

let test_netlist_basics () =
  let nl = N.create () in
  checki "rails present" 2 (N.net_count nl);
  let a = N.add_net nl "a" in
  Alcotest.check Alcotest.string "name" "a" (N.net_name nl a);
  checki "three nets" 3 (N.net_count nl);
  let d = N.add_device nl ~name:"m0" ~gate:a ~src:(N.vdd nl) ~drn:(N.gnd nl) ~polarity:A.N_type in
  checki "one device" 1 (N.device_count nl);
  checkb "polarity stored" true (N.polarity nl d = A.N_type);
  N.set_polarity nl d A.Off_state;
  checkb "polarity reprogrammed" true (N.polarity nl d = A.Off_state);
  let g, s, dr = N.device_terminals nl d in
  checkb "terminals" true (g = a && s = N.vdd nl && dr = N.gnd nl)

let test_netlist_growth () =
  (* Exceed the initial array capacity to exercise growth. *)
  let nl = N.create () in
  let nets = List.init 100 (fun i -> N.add_net nl (Printf.sprintf "n%d" i)) in
  checki "100 + rails" 102 (N.net_count nl);
  List.iteri
    (fun i n ->
      Alcotest.check Alcotest.string "name preserved" (Printf.sprintf "n%d" i)
        (N.net_name nl n))
    nets

(* --- static switch simulation --------------------------------------------------- *)

(* A CMOS inverter: out follows NOT(in). *)
let build_inverter () =
  let nl = N.create () in
  let inp = N.add_net nl "in" in
  let out = N.add_net nl "out" in
  let _ = N.add_device nl ~name:"p" ~gate:inp ~src:(N.vdd nl) ~drn:out ~polarity:A.P_type in
  let _ = N.add_device nl ~name:"n" ~gate:inp ~src:out ~drn:(N.gnd nl) ~polarity:A.N_type in
  (nl, inp, out)

let test_inverter () =
  let nl, inp, out = build_inverter () in
  let sim = Sim.create nl in
  Sim.set_input sim inp true;
  Sim.phase sim;
  checkb "inverts 1" true (Sim.bool_of_net sim out = Some false);
  Sim.set_input sim inp false;
  Sim.phase sim;
  checkb "inverts 0" true (Sim.bool_of_net sim out = Some true)

let test_pass_transistor () =
  let nl = N.create () in
  let a = N.add_net nl "a" and b = N.add_net nl "b" and g = N.add_net nl "g" in
  let _ = N.add_device nl ~name:"pass" ~gate:g ~src:a ~drn:b ~polarity:A.N_type in
  let sim = Sim.create nl in
  Sim.set_input sim a true;
  Sim.set_input sim g true;
  Sim.phase sim;
  checkb "conducting pass copies value" true (Sim.bool_of_net sim b = Some true);
  Sim.set_input sim g false;
  Sim.set_input sim a false;
  Sim.phase sim;
  (* b keeps its charge from the previous phase: dynamic retention. *)
  checkb "disconnected node retains charge" true (Sim.bool_of_net sim b = Some true)

let test_off_state_isolation () =
  let nl = N.create () in
  let a = N.add_net nl "a" and b = N.add_net nl "b" and g = N.add_net nl "g" in
  let _ = N.add_device nl ~name:"off" ~gate:g ~src:a ~drn:b ~polarity:A.Off_state in
  let sim = Sim.create nl in
  Sim.set_input sim a true;
  Sim.set_input sim g true;
  Sim.phase sim;
  checkb "off device never conducts" true (Sim.bool_of_net sim b = None)

let test_x_gate_propagates_x () =
  let nl = N.create () in
  let a = N.add_net nl "a" and b = N.add_net nl "b" and g = N.add_net nl "g" in
  let _ = N.add_device nl ~name:"m" ~gate:g ~src:a ~drn:b ~polarity:A.N_type in
  let sim = Sim.create nl in
  Sim.set_input sim a true;
  Sim.set_input sim b false;
  Sim.set_input_x sim g;
  Sim.phase sim;
  (* Both sides are pinned here, so just check nothing crashes and inputs
     keep their values. *)
  checkb "a stays 1" true (Sim.bool_of_net sim a = Some true);
  let nl2 = N.create () in
  let a2 = N.add_net nl2 "a" and b2 = N.add_net nl2 "b" and g2 = N.add_net nl2 "g" in
  let _ = N.add_device nl2 ~name:"m" ~gate:g2 ~src:a2 ~drn:b2 ~polarity:A.N_type in
  let sim2 = Sim.create nl2 in
  Sim.set_input sim2 a2 true;
  Sim.set_input_x sim2 g2;
  Sim.phase sim2;
  checkb "unknown gate gives X on the far side" true (Sim.bool_of_net sim2 b2 = None)

let test_transmission_chain () =
  (* A chain of 5 n-type pass devices, all gates high. *)
  let nl = N.create () in
  let g = N.add_net nl "g" in
  let nets = Array.init 6 (fun i -> N.add_net nl (Printf.sprintf "n%d" i)) in
  for i = 0 to 4 do
    ignore
      (N.add_device nl ~name:(Printf.sprintf "m%d" i) ~gate:g ~src:nets.(i) ~drn:nets.(i + 1)
         ~polarity:A.N_type)
  done;
  let sim = Sim.create nl in
  Sim.set_input sim g true;
  Sim.set_input sim nets.(0) true;
  Sim.phase sim;
  checkb "value reaches the end" true (Sim.bool_of_net sim nets.(5) = Some true)

let test_release_input () =
  let nl, inp, out = build_inverter () in
  let sim = Sim.create nl in
  Sim.set_input sim inp true;
  Sim.phase sim;
  Sim.release_input sim inp;
  Sim.phase sim;
  (* Input keeps its charge, so the inverter output should hold. *)
  checkb "holds after release" true (Sim.bool_of_net sim out = Some false)

let test_ring_oscillator_detected () =
  (* A 3-inverter ring has no stable point; the bounded relaxation must
     report non-convergence instead of looping forever. *)
  let nl = N.create () in
  let nets = Array.init 3 (fun i -> N.add_net nl (Printf.sprintf "n%d" i)) in
  for i = 0 to 2 do
    let inp = nets.(i) and out = nets.((i + 1) mod 3) in
    ignore (N.add_device nl ~name:(Printf.sprintf "p%d" i) ~gate:inp ~src:(N.vdd nl) ~drn:out ~polarity:A.P_type);
    ignore (N.add_device nl ~name:(Printf.sprintf "n%d" i) ~gate:inp ~src:out ~drn:(N.gnd nl) ~polarity:A.N_type)
  done;
  let sim = Sim.create nl in
  (* Seed one node so the ring has a definite contradiction to chase. *)
  Sim.set_input sim nets.(0) true;
  Sim.release_input sim nets.(0);
  match Sim.phase sim with
  | () -> () (* settling to X everywhere is acceptable *)
  | exception Failure _ -> () (* bounded non-convergence is acceptable too *)

(* --- dynamic logic --------------------------------------------------------------- *)

let test_dynamic_nor () =
  (* Pre-charge/evaluate NOR of two inputs, as in the paper's Fig. 2 but
     with fixed polarities. *)
  let nl = N.create () in
  let clk = N.add_net nl "clk" in
  let a = N.add_net nl "a" and b = N.add_net nl "b" in
  let y = N.add_net nl "y" and s = N.add_net nl "s" in
  let _ = N.add_device nl ~name:"tpc" ~gate:clk ~src:(N.vdd nl) ~drn:y ~polarity:A.P_type in
  let _ = N.add_device nl ~name:"tev" ~gate:clk ~src:s ~drn:(N.gnd nl) ~polarity:A.N_type in
  let _ = N.add_device nl ~name:"ma" ~gate:a ~src:y ~drn:s ~polarity:A.N_type in
  let _ = N.add_device nl ~name:"mb" ~gate:b ~src:y ~drn:s ~polarity:A.N_type in
  let cases = [ (false, false, true); (true, false, false); (false, true, false); (true, true, false) ] in
  List.iter
    (fun (va, vb, expect) ->
      let sim = Sim.create nl in
      Sim.set_input sim a va;
      Sim.set_input sim b vb;
      Sim.set_input sim clk false;
      Sim.phase sim;
      checkb "precharged high" true (Sim.bool_of_net sim y = Some true);
      Sim.set_input sim clk true;
      Sim.phase sim;
      checkb "NOR value" true (Sim.bool_of_net sim y = Some expect))
    cases

let test_run_phases () =
  let nl, inp, out = build_inverter () in
  let sim = Sim.create nl in
  Sim.set_input sim inp true;
  Sim.run_phases sim 3;
  checkb "stable over phases" true (Sim.bool_of_net sim out = Some false)

(* --- Elmore ------------------------------------------------------------------------ *)

let test_elmore_single_rc () =
  let t = Circuit.Elmore.create ~driver_resistance:1000.0 in
  let n = Circuit.Elmore.add_node t ~parent:(Circuit.Elmore.root t) ~resistance:0.0 ~capacitance:1e-12 in
  checkf "R*C" 1e-9 (Circuit.Elmore.delay t n)

let test_elmore_two_segments () =
  (* driver R, then two segments r=100 c=1p each:
     delay = R*(c1+c2) + r*c1 + (r+r)*c2 = 1000*2p + 100*1p + 200*1p. *)
  let t = Circuit.Elmore.create ~driver_resistance:1000.0 in
  let n1 = Circuit.Elmore.add_node t ~parent:(Circuit.Elmore.root t) ~resistance:100.0 ~capacitance:1e-12 in
  let n2 = Circuit.Elmore.add_node t ~parent:n1 ~resistance:100.0 ~capacitance:1e-12 in
  checkf "chain delay" 2.3e-9 (Circuit.Elmore.delay t n2)

let test_elmore_branch () =
  (* A side branch loads the main path only through the shared driver. *)
  let t = Circuit.Elmore.create ~driver_resistance:1000.0 in
  let root = Circuit.Elmore.root t in
  let main = Circuit.Elmore.add_node t ~parent:root ~resistance:100.0 ~capacitance:1e-12 in
  let _side = Circuit.Elmore.add_node t ~parent:root ~resistance:500.0 ~capacitance:1e-12 in
  (* delay(main) = 1000*(1p + 1p) + 100*1p  (side cap shares only the driver) *)
  checkf "branch shares driver only" 2.1e-9 (Circuit.Elmore.delay t main)

let test_elmore_add_capacitance () =
  let t = Circuit.Elmore.create ~driver_resistance:1000.0 in
  let n = Circuit.Elmore.add_node t ~parent:(Circuit.Elmore.root t) ~resistance:0.0 ~capacitance:1e-12 in
  Circuit.Elmore.add_capacitance t n 1e-12;
  checkf "load added" 2e-9 (Circuit.Elmore.delay t n)

let test_elmore_max_and_total () =
  let t = Circuit.Elmore.create ~driver_resistance:100.0 in
  let a = Circuit.Elmore.add_node t ~parent:(Circuit.Elmore.root t) ~resistance:10.0 ~capacitance:1e-12 in
  let _b = Circuit.Elmore.add_node t ~parent:a ~resistance:10.0 ~capacitance:2e-12 in
  checkf "total capacitance" 3e-12 (Circuit.Elmore.total_capacitance t);
  checkb "max ≥ any node delay" true
    (Circuit.Elmore.max_delay t >= Circuit.Elmore.delay t a)

let test_elmore_wire_monotone_in_length () =
  let d k =
    Circuit.Elmore.wire ~driver_resistance:1000.0 ~r_per_seg:100.0 ~c_per_seg:1e-13
      ~segments:k ~load:1e-13
  in
  checkb "longer wire is slower" true (d 10 > d 5 && d 5 > d 1)

let test_elmore_wire_quadratic_unbuffered () =
  (* Unbuffered RC lines grow superlinearly. *)
  let d k =
    Circuit.Elmore.wire ~driver_resistance:0.0 ~r_per_seg:100.0 ~c_per_seg:1e-13 ~segments:k
      ~load:0.0
  in
  checkb "superlinear growth" true (d 20 > 3.5 *. d 10)

(* --- Transient --------------------------------------------------------------------- *)

let vdd = Device.Ambipolar.default.Device.Ambipolar.vdd

let test_transient_rc_charge () =
  (* A single n-device with gate high charges its drain toward VDD - Vth-ish;
     check monotone rise and a sensible final level. *)
  let nl = N.create () in
  let g = N.add_net nl "g" and out = N.add_net nl "out" in
  let _ = N.add_device nl ~name:"m" ~gate:g ~src:(N.vdd nl) ~drn:out ~polarity:A.N_type in
  let tr = Circuit.Transient.create nl in
  Circuit.Transient.drive tr g vdd;
  Circuit.Transient.record tr out;
  Circuit.Transient.run tr ~until:100e-12;
  let samples = List.map snd (Circuit.Transient.waveform tr out) in
  let monotone =
    let rec go = function
      | a :: (b :: _ as rest) -> a <= b +. 1e-4 && go rest
      | _ -> true
    in
    go samples
  in
  checkb "monotone rise" true monotone;
  checkb "reaches a high level" true (Circuit.Transient.voltage tr out > 0.5 *. vdd)

let test_transient_inverter_switches () =
  let nl, inp, out = build_inverter () in
  let tr = Circuit.Transient.create nl in
  Circuit.Transient.record tr out;
  Circuit.Transient.drive tr inp 0.0;
  Circuit.Transient.run tr ~until:100e-12;
  checkb "output high for low input" true (Circuit.Transient.voltage tr out > 0.9 *. vdd);
  Circuit.Transient.drive tr inp vdd;
  Circuit.Transient.run tr ~until:250e-12;
  checkb "output low for high input" true (Circuit.Transient.voltage tr out < 0.1 *. vdd);
  (match Circuit.Transient.crossing_time tr out ~level:(vdd /. 2.0) ~rising:false with
  | Some t -> checkb "fall crossing after the input step" true (t > 100e-12)
  | None -> Alcotest.fail "expected a falling crossing")

let test_transient_dynamic_gnor_phases () =
  (* Pre-charge then evaluate at waveform level; discharging and
     non-discharging input cases. *)
  let build () =
    let nl = N.create () in
    let clk = N.add_net nl "clk" and a = N.add_net nl "a" in
    let y = N.add_net nl "y" and s = N.add_net nl "s" in
    let _ = N.add_device nl ~name:"tpc" ~gate:clk ~src:(N.vdd nl) ~drn:y ~polarity:A.P_type in
    let _ = N.add_device nl ~name:"tev" ~gate:clk ~src:s ~drn:(N.gnd nl) ~polarity:A.N_type in
    let _ = N.add_device nl ~name:"m" ~gate:a ~src:y ~drn:s ~polarity:A.N_type in
    (nl, clk, a, y)
  in
  let run input_high =
    let nl, clk, a, y = build () in
    let tr = Circuit.Transient.create nl in
    Circuit.Transient.drive tr a (if input_high then vdd else 0.0);
    Circuit.Transient.drive tr clk 0.0;
    Circuit.Transient.run tr ~until:60e-12;
    let after_precharge = Circuit.Transient.voltage tr y in
    Circuit.Transient.drive tr clk vdd;
    Circuit.Transient.run tr ~until:200e-12;
    (after_precharge, Circuit.Transient.voltage tr y)
  in
  let pre1, eval1 = run true in
  checkb "precharged high" true (pre1 > 0.9 *. vdd);
  checkb "discharges when input high" true (eval1 < 0.1 *. vdd);
  let pre0, eval0 = run false in
  checkb "precharged high (case 0)" true (pre0 > 0.9 *. vdd);
  checkb "holds when input low" true (eval0 > 0.9 *. vdd)

let test_transient_charge_retention () =
  (* A floating node keeps its voltage when every device is off. *)
  let nl = N.create () in
  let g = N.add_net nl "g" and out = N.add_net nl "out" in
  let _ = N.add_device nl ~name:"m" ~gate:g ~src:(N.vdd nl) ~drn:out ~polarity:A.N_type in
  let tr = Circuit.Transient.create nl in
  Circuit.Transient.drive tr g vdd;
  Circuit.Transient.run tr ~until:100e-12;
  let charged = Circuit.Transient.voltage tr out in
  Circuit.Transient.drive tr g 0.0;
  Circuit.Transient.run tr ~until:300e-12;
  let later = Circuit.Transient.voltage tr out in
  checkb "retains charge within 5%" true (Float.abs (later -. charged) < 0.05 *. vdd)

let test_transient_capacitance_slows_node () =
  let fall_time cap =
    let nl = N.create () in
    let g = N.add_net nl "g" and out = N.add_net nl "out" in
    let _ = N.add_device nl ~name:"m" ~gate:g ~src:out ~drn:(N.gnd nl) ~polarity:A.N_type in
    let tr = Circuit.Transient.create nl in
    Circuit.Transient.set_capacitance tr out cap;
    (* start the node high, then discharge through the device *)
    Circuit.Transient.drive tr out vdd;
    Circuit.Transient.run tr ~until:5e-12;
    Circuit.Transient.release tr out;
    Circuit.Transient.record tr out;
    Circuit.Transient.drive tr g vdd;
    Circuit.Transient.run tr ~until:500e-12;
    Circuit.Transient.crossing_time tr out ~level:(vdd /. 2.0) ~rising:false
  in
  match (fall_time 0.2e-15, fall_time 2.0e-15) with
  | Some fast, Some slow -> checkb "10x capacitance is slower" true (slow > 3.0 *. fast)
  | _ -> Alcotest.fail "expected both crossings"

(* --- Vcd -------------------------------------------------------------------------- *)

let run_recorded_inverter () =
  let nl, inp, out = build_inverter () in
  let tr = Circuit.Transient.create nl in
  Circuit.Transient.record tr out;
  Circuit.Transient.record tr inp;
  Circuit.Transient.drive tr inp 0.0;
  Circuit.Transient.run tr ~until:50e-12;
  Circuit.Transient.drive tr inp vdd;
  Circuit.Transient.run tr ~until:120e-12;
  (tr, inp, out)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_vcd_structure () =
  let tr, inp, out = run_recorded_inverter () in
  let vcd = Circuit.Vcd.to_string tr ~nets:[ (inp, "in"); (out, "out") ] in
  let has s = contains vcd s in
  checkb "timescale" true (has "$timescale 1 ps $end");
  checkb "two vars" true (has "$var real 64 ! in $end" && has "$var real 64 \" out $end");
  checkb "enddefinitions" true (has "$enddefinitions $end");
  checkb "has timestamps" true (has "#0" || has "#1");
  checkb "has real changes" true (has "r1.2" || has "r0 ")

let test_vcd_resolution_limits_samples () =
  let tr, _, out = run_recorded_inverter () in
  let fine = Circuit.Vcd.to_string ~resolution:1e-4 tr ~nets:[ (out, "out") ] in
  let coarse = Circuit.Vcd.to_string ~resolution:0.3 tr ~nets:[ (out, "out") ] in
  checkb "coarser resolution fewer changes" true (String.length coarse < String.length fine)

let test_vcd_file () =
  let tr, inp, out = run_recorded_inverter () in
  let path = Filename.temp_file "cnfet" ".vcd" in
  Circuit.Vcd.write_file path tr ~nets:[ (inp, "in"); (out, "out") ];
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  checkb "non-empty file" true (len > 100)

(* Hostile display names must still yield a parseable dump: VCD [$var]
   lines are whitespace-delimited, so a name with spaces or reserved
   characters would change the token count and corrupt the file. *)
let test_vcd_name_sanitization () =
  checkb "spaces replaced" true (Circuit.Vcd.sanitize_name "net 3 (out)" = "net_3_(out)");
  checkb "dollar replaced" true (Circuit.Vcd.sanitize_name "$end" = "_end");
  checkb "tab and newline replaced" true (Circuit.Vcd.sanitize_name "a\tb\nc" = "a_b_c");
  checkb "empty becomes placeholder" true (Circuit.Vcd.sanitize_name "" = "_");
  checkb "clean names untouched" true (Circuit.Vcd.sanitize_name "out[2]" = "out[2]");
  let tr, inp, out = run_recorded_inverter () in
  let vcd =
    Circuit.Vcd.to_string tr ~nets:[ (inp, "in put $end"); (out, "") ]
  in
  (* Every $var declaration must tokenize to exactly 6 fields:
     $var real 64 <id> <name> $end. *)
  String.split_on_char '\n' vcd
  |> List.iter (fun line ->
         if String.length line >= 4 && String.sub line 0 4 = "$var" then begin
           let tokens =
             String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
           in
           checki "six tokens in $var line" 6 (List.length tokens);
           checkb "terminated by $end" true (List.nth tokens 5 = "$end")
         end);
  checkb "sanitized name present" true (contains vcd " in_put__end ");
  checkb "empty name placeholder present" true (contains vcd " _ ")

(* The paper's Fig. 2 sequence as a golden waveform: a two-input GNOR
   (modes Pass/Invert) pre-charged with clk low for 60 ps, then evaluated
   with clk high to 200 ps. A = 1 through Pass discharges the output. The
   rendered VCD must match test/golden/gnor_fig2.vcd byte for byte — the
   transient solver is deterministic, so any drift is a semantics change.
   Set DUMP_VCD=1 to print the freshly rendered dump for updating the
   golden file after an intentional change. *)
let gnor_fig2_vcd () =
  let nl = N.create () in
  let clk = N.add_net nl "clk" in
  let a = N.add_net nl "a" and b = N.add_net nl "b" in
  let gate = Cnfet.Gnor.build nl ~name:"g" ~clock:clk ~inputs:[| a; b |] in
  Cnfet.Gnor.configure nl gate [| Cnfet.Gnor.Pass; Cnfet.Gnor.Invert |];
  let y = Cnfet.Gnor.output gate in
  let tr = Circuit.Transient.create nl in
  List.iter (fun n -> Circuit.Transient.record tr n) [ clk; a; b; y ];
  Circuit.Transient.drive tr a vdd;
  Circuit.Transient.drive tr b vdd;
  Circuit.Transient.drive tr clk 0.0;
  Circuit.Transient.run tr ~until:60e-12;
  Circuit.Transient.drive tr clk vdd;
  Circuit.Transient.run tr ~until:200e-12;
  let vcd = Circuit.Vcd.to_string tr ~nets:[ (clk, "clk"); (a, "a"); (b, "b"); (y, "out") ] in
  (vcd, Circuit.Transient.voltage tr y)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let test_vcd_gnor_golden () =
  let vcd, final_y = gnor_fig2_vcd () in
  (* Functional cross-check first: Pass(A=1) must discharge the output,
     matching the zero-delay model. *)
  checkb "functional model agrees" false
    (Cnfet.Gnor.eval_functional [| Cnfet.Gnor.Pass; Cnfet.Gnor.Invert |] [| true; true |]);
  checkb "output discharged" true (final_y < 0.1 *. vdd);
  if Sys.getenv_opt "DUMP_VCD" <> None then print_string vcd;
  (* cwd is test/ under [dune runtest], the project root under [dune exec]. *)
  let golden_path =
    if Sys.file_exists "golden/gnor_fig2.vcd" then "golden/gnor_fig2.vcd"
    else "test/golden/gnor_fig2.vcd"
  in
  let golden = read_file golden_path in
  if vcd <> golden then
    Alcotest.failf
      "VCD drifted from golden/gnor_fig2.vcd (%d vs %d bytes). If the change is intentional, \
       regenerate with: DUMP_VCD=1 dune exec test/test_circuit.exe -- test vcd"
      (String.length vcd) (String.length golden)

let () =
  Alcotest.run "circuit"
    [
      ( "value",
        [
          Alcotest.test_case "merge strength" `Quick test_value_merge_strength;
          Alcotest.test_case "merge conflict" `Quick test_value_merge_conflict;
          Alcotest.test_case "charge sharing" `Quick test_value_merge_charge_sharing;
          Alcotest.test_case "floating identity" `Quick test_value_merge_floating_identity;
          Alcotest.test_case "weaken" `Quick test_value_weaken;
          Alcotest.test_case "to_bool" `Quick test_value_to_bool;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "basics" `Quick test_netlist_basics;
          Alcotest.test_case "array growth" `Quick test_netlist_growth;
        ] );
      ( "static-sim",
        [
          Alcotest.test_case "inverter" `Quick test_inverter;
          Alcotest.test_case "pass transistor + retention" `Quick test_pass_transistor;
          Alcotest.test_case "off-state isolation" `Quick test_off_state_isolation;
          Alcotest.test_case "X gate propagates X" `Quick test_x_gate_propagates_x;
          Alcotest.test_case "transmission chain" `Quick test_transmission_chain;
          Alcotest.test_case "release input" `Quick test_release_input;
          Alcotest.test_case "ring oscillator bounded" `Quick test_ring_oscillator_detected;
        ] );
      ( "dynamic-sim",
        [
          Alcotest.test_case "precharge/evaluate NOR" `Quick test_dynamic_nor;
          Alcotest.test_case "run_phases" `Quick test_run_phases;
        ] );
      ( "transient",
        [
          Alcotest.test_case "RC charge" `Quick test_transient_rc_charge;
          Alcotest.test_case "inverter switches" `Quick test_transient_inverter_switches;
          Alcotest.test_case "dynamic GNOR phases" `Quick test_transient_dynamic_gnor_phases;
          Alcotest.test_case "charge retention" `Quick test_transient_charge_retention;
          Alcotest.test_case "capacitance slows node" `Quick
            test_transient_capacitance_slows_node;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "resolution limits samples" `Quick
            test_vcd_resolution_limits_samples;
          Alcotest.test_case "file output" `Quick test_vcd_file;
          Alcotest.test_case "name sanitization" `Quick test_vcd_name_sanitization;
          Alcotest.test_case "gnor fig2 golden dump" `Quick test_vcd_gnor_golden;
        ] );
      ( "elmore",
        [
          Alcotest.test_case "single RC" `Quick test_elmore_single_rc;
          Alcotest.test_case "two segments" `Quick test_elmore_two_segments;
          Alcotest.test_case "branch" `Quick test_elmore_branch;
          Alcotest.test_case "added load" `Quick test_elmore_add_capacitance;
          Alcotest.test_case "max and total" `Quick test_elmore_max_and_total;
          Alcotest.test_case "wire monotone" `Quick test_elmore_wire_monotone_in_length;
          Alcotest.test_case "unbuffered superlinear" `Quick
            test_elmore_wire_quadratic_unbuffered;
        ] );
    ]
