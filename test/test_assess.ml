(* Tests for the assess library: robust statistics (median/MAD
   fixtures, bootstrap CI containment, degenerate inputs as typed
   errors), run artifact roundtrips through a real temp directory, A/B
   verdict classification (A/A within noise, planted regression named),
   and an in-process A/A determinism check over the quick espresso
   profile. *)

module Stats = Assess.Stats
module Run = Assess.Run
module Ab = Assess.Ab
module Json = Assess.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)
let checks = Alcotest.check Alcotest.string

let get_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error %s" what (Stats.error_to_string e)

let run_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error %s" what (Run.error_to_string e)

(* --- Stats fixtures ------------------------------------------------------- *)

let test_median_fixtures () =
  checkf "odd count" 3.0 (get_ok "median" (Stats.median [| 5.0; 1.0; 3.0 |]));
  checkf "even count averages" 2.5 (get_ok "median" (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]));
  checkf "single sample" 7.0 (get_ok "median" (Stats.median [| 7.0 |]));
  checkf "unsorted ties" 2.0 (get_ok "median" (Stats.median [| 2.0; 9.0; 2.0 |]))

let test_mad_fixtures () =
  (* median 3, |x - 3| = [2;1;0;1;2], mad = 1 *)
  checkf "symmetric" 1.0 (get_ok "mad" (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]));
  checkf "all equal is zero" 0.0 (get_ok "mad" (Stats.mad [| 4.0; 4.0; 4.0 |]));
  (* median 10, deviations [9;0;0;90], sorted [0;0;9;90], mad = 4.5 *)
  checkf "outlier resistant" 4.5 (get_ok "mad" (Stats.mad [| 1.0; 10.0; 10.0; 100.0 |]))

let test_rel_spread () =
  (* mad 1 / median 3 *)
  checkf "mad over median" (1.0 /. 3.0)
    (get_ok "rel_spread" (Stats.rel_spread [| 1.0; 2.0; 3.0; 4.0; 5.0 |]))

(* --- Degenerate inputs: typed errors, never NaN --------------------------- *)

let test_degenerate_inputs () =
  let is_not_enough = function Error (Stats.Not_enough_samples _) -> true | _ -> false in
  let is_degenerate = function Error (Stats.Degenerate_samples _) -> true | _ -> false in
  let is_non_finite = function Error (Stats.Non_finite _) -> true | _ -> false in
  checkb "median of empty" true (is_not_enough (Stats.median [||]));
  checkb "mad of empty" true (is_not_enough (Stats.mad [||]));
  checkb "mad of one sample" true (is_not_enough (Stats.mad [| 1.0 |]));
  checkb "rel_spread of one sample" true (is_not_enough (Stats.rel_spread [| 1.0 |]));
  checkb "rel_spread of all-equal" true (is_degenerate (Stats.rel_spread [| 2.0; 2.0; 2.0 |]));
  checkb "rel_spread of zero median" true
    (is_degenerate (Stats.rel_spread [| -1.0; 0.0; 1.0 |]));
  checkb "bootstrap of one sample" true (is_not_enough (Stats.bootstrap_ci [| 1.0 |]));
  checkb "median of NaN" true (is_non_finite (Stats.median [| 1.0; Float.nan |]));
  checkb "median of infinity" true (is_non_finite (Stats.median [| Float.infinity |]));
  checkb "compare empty a" true
    (is_not_enough (Stats.compare_samples ~higher_is_better:true ~floor:0.05 [||] [| 1.0 |]));
  checkb "compare zero-median a" true
    (match Stats.compare_samples ~higher_is_better:true ~floor:0.05 [| 0.0 |] [| 1.0 |] with
    | Error _ -> true
    | Ok _ -> false)

(* --- Bootstrap CI --------------------------------------------------------- *)

let test_bootstrap_ci_contains_median () =
  (* Deterministic synthetic series around 100 with ~2% jitter. *)
  let rng = Util.Rng.create 42 in
  let xs = Array.init 25 (fun _ -> 100.0 +. Util.Rng.float rng 4.0 -. 2.0) in
  let m = get_ok "median" (Stats.median xs) in
  let ci = get_ok "bootstrap" (Stats.bootstrap_ci ~seed:9001 xs) in
  checkb "lo <= hi" true (ci.Stats.lo <= ci.Stats.hi);
  checkb "CI contains sample median" true (ci.Stats.lo <= m && m <= ci.Stats.hi);
  checkb "CI is tight for tight data" true (ci.Stats.hi -. ci.Stats.lo < 4.0);
  (* Same seed, same interval: the estimator is deterministic. *)
  let ci' = get_ok "bootstrap again" (Stats.bootstrap_ci ~seed:9001 xs) in
  checkf "lo reproducible" ci.Stats.lo ci'.Stats.lo;
  checkf "hi reproducible" ci.Stats.hi ci'.Stats.hi

(* --- Verdicts ------------------------------------------------------------- *)

let test_aa_identical_within_noise () =
  let xs = [| 10.0; 10.2; 9.9; 10.1; 10.05 |] in
  let c =
    get_ok "compare"
      (Stats.compare_samples ~higher_is_better:true ~floor:0.05 xs (Array.copy xs))
  in
  checks "A/A verdict" "within-noise" (Stats.verdict_to_string c.Stats.verdict);
  checkb "ratio near 1" true (Float.abs (c.Stats.ratio -. 1.0) < 1e-9)

let test_planted_regression_detected () =
  let a = [| 10.0; 10.1; 9.95; 10.05; 10.0 |] in
  (* 30% slower on a higher-is-better metric: clear regression. *)
  let b = Array.map (fun x -> x *. 0.7) a in
  let c =
    get_ok "compare" (Stats.compare_samples ~higher_is_better:true ~floor:0.05 a b)
  in
  checks "planted regression" "regressed" (Stats.verdict_to_string c.Stats.verdict);
  (* Same 30% drop on a lower-is-better metric is an improvement. *)
  let c' =
    get_ok "compare" (Stats.compare_samples ~higher_is_better:false ~floor:0.05 a b)
  in
  checks "lower-is-better orientation" "improved" (Stats.verdict_to_string c'.Stats.verdict)

let test_single_sample_point_fallback () =
  let c =
    get_ok "compare" (Stats.compare_samples ~higher_is_better:true ~floor:0.05 [| 10.0 |] [| 6.0 |])
  in
  checkb "no CI with single samples" true (c.Stats.ci = None);
  checks "point-estimate regression" "regressed" (Stats.verdict_to_string c.Stats.verdict)

(* --- Run artifact roundtrip ----------------------------------------------- *)

let sample_run () =
  Run.create ~run_id:"espresso-quick-20260809T000000Z-s2008-cafe42" ~git_rev:"deadbeef"
    ~host:"testhost" ~created_at:"2026-08-09T00:00:00Z"
    ~meta:[ ("bench", "espresso"); ("quick", "true") ]
    ~profile:"espresso-quick" ~seed:2008 ~wall_s:1.25
    [
      Run.metric ~units:"x" "geomean/op_speedup" [| 1.84; 1.86; 1.85 |];
      Run.metric ~units:"s" ~higher_is_better:false "adder4/minimize_s" [| 0.0123; 0.0125 |];
      (* exercise awkward floats: tiny, huge, negative, integral *)
      Run.metric "edge/floats" [| 1e-300; 1.7e15; -0.0; 3.0 |];
    ]

let test_run_json_roundtrip () =
  let r = sample_run () in
  let r' = run_ok "of_json" (Run.of_json (Run.to_json r)) in
  checkb "bit-identical roundtrip" true (r = r');
  (* And a second encode is byte-identical: stable output. *)
  checks "stable encoding" (Run.to_json r) (Run.to_json r')

let test_run_save_load () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "assess_test_runs" in
  let r = sample_run () in
  let run_dir = run_ok "save" (Run.save ~dir r) in
  let by_dir = run_ok "load dir" (Run.load run_dir) in
  let by_file = run_ok "load file" (Run.load (Filename.concat run_dir "run.json")) in
  checkb "load by dir" true (r = by_dir);
  checkb "load by file" true (r = by_file);
  checkb "index.tsv written" true (Sys.file_exists (Filename.concat dir "index.tsv"))

let test_run_parse_errors_are_typed () =
  let doc = String.trim (Run.to_json (sample_run ())) in
  (* Every strict prefix (up to the final closing brace) must fail with a
     typed error, never raise. *)
  let n = String.length doc in
  for cut = 0 to n - 1 do
    match Run.of_json (String.sub doc 0 cut) with
    | Ok _ -> Alcotest.failf "truncation at %d parsed" cut
    | Error (Run.Parse _ | Run.Schema _) -> ()
    | Error (Run.Io _) -> Alcotest.failf "truncation at %d gave Io" cut
  done;
  (* Well-formed JSON of the wrong shape is a schema error. *)
  (match Run.of_json "{\"schema_version\":1}" with
  | Error (Run.Schema _) -> ()
  | _ -> Alcotest.fail "missing fields accepted");
  match Run.of_json "{\"schema_version\":99}" with
  | Error (Run.Schema _) -> ()
  | _ -> Alcotest.fail "future schema version accepted"

let test_json_number_fidelity () =
  let check_roundtrip f =
    match Json.parse (Json.to_string (Json.Number f)) with
    | Ok (Json.Number f') ->
      checkb (Printf.sprintf "roundtrip %h" f) true (Int64.bits_of_float f = Int64.bits_of_float f')
    | _ -> Alcotest.failf "number %h did not roundtrip" f
  in
  List.iter check_roundtrip
    [ 0.1; 1.0 /. 3.0; 1e-300; 1.7976931348623157e308; 42.0; -0.0; 123456789.125 ]

(* --- Ab report ------------------------------------------------------------ *)

let run_with ~id metrics =
  Run.create ~run_id:id ~git_rev:"deadbeef" ~host:"testhost"
    ~created_at:"2026-08-09T00:00:00Z" ~profile:"p" ~seed:1 ~wall_s:1.0 metrics

let test_ab_planted_regression_named () =
  let good = [| 10.0; 10.1; 9.9; 10.05; 9.95 |] in
  let a =
    run_with ~id:"a"
      [ Run.metric "stable" good; Run.metric "victim" good ]
  in
  let b =
    run_with ~id:"b"
      [
        Run.metric "stable" (Array.copy good);
        Run.metric "victim" (Array.map (fun x -> x *. 0.7) good);
      ]
  in
  let report = Ab.compare a b in
  checkb "regression detected" true (Ab.has_regression report);
  checkb "victim named" true (List.mem "victim" (Ab.regressed report));
  checkb "stable not blamed" true (not (List.mem "stable" (Ab.regressed report)));
  checkb "stable within noise" true (List.mem "stable" (Ab.within_noise report))

let test_ab_aa_clean () =
  let good = [| 10.0; 10.1; 9.9; 10.05; 9.95 |] in
  let a = run_with ~id:"a" [ Run.metric "m1" good; Run.metric "m2" good ] in
  let b = run_with ~id:"b" [ Run.metric "m1" (Array.copy good); Run.metric "m2" (Array.copy good) ] in
  let report = Ab.compare a b in
  checkb "A/A has no regression" true (not (Ab.has_regression report));
  checki "all within noise" 2 (List.length (Ab.within_noise report))

let test_ab_disjoint_and_errors () =
  let a =
    run_with ~id:"a"
      [ Run.metric "shared" [| 1.0; 1.0; 1.0 |]; Run.metric "only_a" [| 1.0 |] ]
  in
  let b =
    run_with ~id:"b"
      [ Run.metric "shared" [| 1.0; 1.0; 1.0 |]; Run.metric "only_b" [| 2.0 |] ]
  in
  let report = Ab.compare a b in
  checkb "only_in_a" true (report.Ab.only_in_a = [ "only_a" ]);
  checkb "only_in_b" true (report.Ab.only_in_b = [ "only_b" ]);
  (* identical constant series: compares clean, never a regression *)
  checkb "degenerate is not regression" true (not (Ab.has_regression report));
  let filtered = Ab.compare ~filter:(fun n -> n = "shared") a b in
  checki "filter keeps one metric" 1 (List.length filtered.Ab.metrics)

(* --- In-process A/A determinism over the quick espresso profile ----------- *)

let test_espresso_quick_aa () =
  let go () =
    let _reports, arun =
      Runtime.Bench_espresso.run_assess ~quick:true ~seed:2008 ~repeats:2 ()
    in
    arun
  in
  let a = go () in
  let b = go () in
  checks "same profile" a.Run.profile b.Run.profile;
  (* Identity metrics are exactly deterministic across same-seed runs. *)
  List.iter
    (fun m ->
      let name = m.Run.name in
      if Filename.check_suffix name "identical" then
        match Run.find_metric b name with
        | Some m' -> checkb (name ^ " deterministic") true (m.Run.samples = m'.Run.samples)
        | None -> Alcotest.failf "metric %s missing from second run" name)
    a.Run.metrics;
  (* Timing metrics only need to agree within a generous noise floor:
     within-run spread underestimates between-run drift, so the floor
     here is looser than the CI default. *)
  let report = Ab.compare ~min_floor:0.5 a b in
  (match Ab.regressed report with
  | [] -> ()
  | names ->
    Alcotest.failf "same-seed A/A regressed beyond 50%% floor: %s" (String.concat ", " names));
  checkb "A/A compares some metrics" true (List.length report.Ab.metrics > 0)

let () =
  Alcotest.run "assess"
    [
      ( "stats",
        [
          Alcotest.test_case "median fixtures" `Quick test_median_fixtures;
          Alcotest.test_case "mad fixtures" `Quick test_mad_fixtures;
          Alcotest.test_case "rel_spread" `Quick test_rel_spread;
          Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
          Alcotest.test_case "bootstrap CI containment" `Quick test_bootstrap_ci_contains_median;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "A/A within noise" `Quick test_aa_identical_within_noise;
          Alcotest.test_case "planted 30% regression" `Quick test_planted_regression_detected;
          Alcotest.test_case "single-sample fallback" `Quick test_single_sample_point_fallback;
        ] );
      ( "run artifacts",
        [
          Alcotest.test_case "json roundtrip" `Quick test_run_json_roundtrip;
          Alcotest.test_case "save/load" `Quick test_run_save_load;
          Alcotest.test_case "typed parse errors" `Quick test_run_parse_errors_are_typed;
          Alcotest.test_case "number fidelity" `Quick test_json_number_fidelity;
        ] );
      ( "ab",
        [
          Alcotest.test_case "planted regression named" `Quick test_ab_planted_regression_named;
          Alcotest.test_case "A/A clean" `Quick test_ab_aa_clean;
          Alcotest.test_case "disjoint metrics and filters" `Quick test_ab_disjoint_and_errors;
        ] );
      ( "integration",
        [
          Alcotest.test_case "espresso quick A/A" `Slow test_espresso_quick_aa;
        ] );
    ]
