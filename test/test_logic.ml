(* Tests for the logic substrate: cubes, covers (tautology / complement /
   containment), truth tables, expressions, and .pla I/O. *)

module Cube = Logic.Cube
module Cover = Logic.Cover
module Tt = Logic.Truth_table
module Expr = Logic.Expr

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let out1 = Util.Bitvec.of_list 1 [ 0 ]

let cube_of_string s outs =
  let lits =
    List.init (String.length s) (fun i ->
        match s.[i] with
        | '0' -> Cube.Zero
        | '1' -> Cube.One
        | '-' -> Cube.Dc
        | _ -> assert false)
  in
  Cube.of_literals lits ~outs

let c1 s = cube_of_string s out1

let cover1 strs = Cover.make ~n_in:(String.length (List.hd strs)) ~n_out:1 (List.map c1 strs)

(* --- Cube ---------------------------------------------------------------- *)

let test_cube_roundtrip () =
  let c = c1 "01-" in
  Alcotest.check Alcotest.string "to_string" "01- 1" (Cube.to_string c);
  Alcotest.check Alcotest.int "literal count" 2 (Cube.literal_count c);
  checkb "get 0" true (Cube.get c 0 = Cube.Zero);
  checkb "get 1" true (Cube.get c 1 = Cube.One);
  checkb "get 2" true (Cube.get c 2 = Cube.Dc)

let test_cube_set_functional () =
  let c = c1 "000" in
  let c' = Cube.set c 1 Cube.Dc in
  checkb "original untouched" true (Cube.get c 1 = Cube.Zero);
  checkb "copy updated" true (Cube.get c' 1 = Cube.Dc)

let test_cube_containment () =
  checkb "0- contains 00" true (Cube.contains (c1 "0-") (c1 "00"));
  checkb "0- contains 01" true (Cube.contains (c1 "0-") (c1 "01"));
  checkb "00 not contains 0-" false (Cube.contains (c1 "00") (c1 "0-"));
  checkb "self containment" true (Cube.contains (c1 "01") (c1 "01"));
  checkb "disjoint" false (Cube.contains (c1 "0-") (c1 "10"))

let test_cube_containment_outputs () =
  let a = cube_of_string "--" (Util.Bitvec.of_list 2 [ 0; 1 ]) in
  let b = cube_of_string "--" (Util.Bitvec.of_list 2 [ 0 ]) in
  checkb "wider outputs contain narrower" true (Cube.contains a b);
  checkb "narrower don't contain wider" false (Cube.contains b a)

let test_cube_intersect () =
  (match Cube.intersect (c1 "0-") (c1 "-1") with
  | Some c -> Alcotest.check Alcotest.string "intersection" "01 1" (Cube.to_string c)
  | None -> Alcotest.fail "expected intersection");
  checkb "disjoint gives None" true (Cube.intersect (c1 "0-") (c1 "1-") = None)

let test_cube_intersect_output_disjoint () =
  let a = cube_of_string "--" (Util.Bitvec.of_list 2 [ 0 ]) in
  let b = cube_of_string "--" (Util.Bitvec.of_list 2 [ 1 ]) in
  checkb "output-disjoint cubes don't intersect" true (Cube.intersect a b = None)

let test_cube_distance () =
  checki "distance 0" 0 (Cube.distance (c1 "0-") (c1 "00"));
  checki "distance 1" 1 (Cube.distance (c1 "00") (c1 "01"));
  checki "distance 2" 2 (Cube.distance (c1 "00") (c1 "11"))

let test_cube_supercube2 () =
  let s = Cube.supercube2 (c1 "00") (c1 "01") in
  Alcotest.check Alcotest.string "merge adjacent" "0- 1" (Cube.to_string s);
  let s2 = Cube.supercube2 (c1 "00") (c1 "11") in
  Alcotest.check Alcotest.string "merge opposite" "-- 1" (Cube.to_string s2)

let test_cube_cofactor () =
  (match Cube.cofactor (c1 "01") ~by:(c1 "0-") with
  | Some c -> Alcotest.check Alcotest.string "cofactor" "-1 1" (Cube.to_string c)
  | None -> Alcotest.fail "expected cofactor");
  checkb "disjoint cofactor None" true (Cube.cofactor (c1 "1-") ~by:(c1 "0-") = None)

let test_cube_matches () =
  let c = c1 "1-0" in
  checkb "matches" true (Cube.matches c [| true; false; false |]);
  checkb "matches dc" true (Cube.matches c [| true; true; false |]);
  checkb "fails lit 0" false (Cube.matches c [| false; true; false |]);
  checkb "fails lit 2" false (Cube.matches c [| true; true; true |])

let test_cube_universe () =
  let u = Cube.universe ~n_in:4 ~n_out:2 in
  checki "no literals" 0 (Cube.literal_count u);
  checkb "all outputs" true (Util.Bitvec.is_full (Cube.outputs u))

(* --- Cover basics -------------------------------------------------------- *)

let test_cover_eval () =
  let f = cover1 [ "1-"; "01" ] in
  let v a b = Util.Bitvec.get (Cover.eval f [| a; b |]) 0 in
  checkb "10" true (v true false);
  checkb "11" true (v true true);
  checkb "01" true (v false true);
  checkb "00" false (v false false)

let test_cover_literal_total () =
  let f = cover1 [ "1-"; "01" ] in
  checki "literals" 3 (Cover.literal_total f)

let test_cover_scc () =
  let f = cover1 [ "1-"; "11"; "0-"; "0-" ] in
  let r = Cover.single_cube_containment f in
  checki "kept" 2 (Cover.size r)

let test_cover_restrict_output () =
  let c01 = cube_of_string "1-" (Util.Bitvec.of_list 2 [ 0; 1 ]) in
  let c0 = cube_of_string "0-" (Util.Bitvec.of_list 2 [ 0 ]) in
  let f = Cover.make ~n_in:2 ~n_out:2 [ c01; c0 ] in
  checki "output 0 has both" 2 (Cover.size (Cover.restrict_output f 0));
  checki "output 1 has one" 1 (Cover.size (Cover.restrict_output f 1))

(* --- Tautology ----------------------------------------------------------- *)

let test_tautology_simple () =
  checkb "x + x' is tautology" true (Cover.tautology (cover1 [ "1-"; "0-" ]));
  checkb "x is not" false (Cover.tautology (cover1 [ "1-" ]));
  checkb "universe is" true (Cover.tautology (cover1 [ "--" ]));
  checkb "empty is not" false (Cover.tautology (Cover.empty ~n_in:2 ~n_out:1))

let test_tautology_needs_recursion () =
  checkb "4 minterms of 2 vars" true (Cover.tautology (cover1 [ "11"; "10"; "01"; "00" ]));
  checkb "3 minterms are not" false (Cover.tautology (cover1 [ "11"; "10"; "01" ]))

let test_tautology_unate_leaf () =
  let f = cover1 [ "1--"; "-1-"; "--1" ] in
  checkb "unate, no universe" false (Cover.tautology f)

let test_tautology_multi_output () =
  let both = cube_of_string "--" (Util.Bitvec.of_list 2 [ 0; 1 ]) in
  let f = Cover.make ~n_in:2 ~n_out:2 [ both ] in
  checkb "both outputs tautology" true (Cover.tautology f);
  let only0 = cube_of_string "--" (Util.Bitvec.of_list 2 [ 0 ]) in
  let g = Cover.make ~n_in:2 ~n_out:2 [ only0 ] in
  checkb "output 1 uncovered" false (Cover.tautology g)

(* --- Complement ---------------------------------------------------------- *)

let test_complement_single_cube () =
  let f = cover1 [ "11" ] in
  let c = Cover.complement f in
  let tt = Tt.of_cover c in
  let expect = Tt.of_fun ~n_in:2 ~n_out:1 (fun a _ -> not (a.(0) && a.(1))) in
  checkb "¬(x0 x1)" true (Tt.equal tt expect)

let test_complement_empty_and_universe () =
  let empty = Cover.empty ~n_in:3 ~n_out:1 in
  let c = Cover.complement empty in
  checkb "¬∅ = universe" true (Cover.tautology c);
  let u = cover1 [ "---" ] in
  checkb "¬universe = ∅" true (Cover.is_empty (Cover.complement u))

let test_complement_involution_random () =
  let rng = Util.Rng.create 17 in
  for _ = 1 to 30 do
    let n_in = 2 + Util.Rng.int rng 5 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let cc = Cover.complement (Cover.complement f) in
    checkb "¬¬f ≡ f" true (Tt.equal (Tt.of_cover f) (Tt.of_cover cc))
  done

let test_complement_partitions_space () =
  let rng = Util.Rng.create 23 in
  for _ = 1 to 30 do
    let n_in = 2 + Util.Rng.int rng 5 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let c = Cover.complement f in
    checkb "f ∪ ¬f tautology" true (Cover.tautology (Cover.union f c));
    let tf = Tt.of_cover f and tc = Tt.of_cover c in
    let overlap = ref false in
    for m = 0 to (1 lsl n_in) - 1 do
      for o = 0 to n_out - 1 do
        if Tt.get tf ~minterm:m ~output:o && Tt.get tc ~minterm:m ~output:o then overlap := true
      done
    done;
    checkb "f ∩ ¬f empty" false !overlap
  done

(* --- covers_cube / covers / equivalent ----------------------------------- *)

let test_covers_cube () =
  let f = cover1 [ "1-"; "01" ] in
  checkb "covers 11" true (Cover.covers_cube f (c1 "11"));
  checkb "covers 01" true (Cover.covers_cube f (c1 "01"));
  checkb "not covers 0-" false (Cover.covers_cube f (c1 "0-"));
  checkb "covers own cube" true (Cover.covers_cube f (c1 "1-"))

let test_covers_cube_needs_two () =
  let f = cover1 [ "0-"; "1-" ] in
  checkb "union covers universe cube" true (Cover.covers_cube f (c1 "--"))

let test_equivalent () =
  let a = cover1 [ "1-"; "01" ] in
  let b = cover1 [ "-1"; "10" ] in
  checkb "x0+x1 two writings" true (Cover.equivalent a b);
  let c = cover1 [ "11" ] in
  checkb "not equivalent" false (Cover.equivalent a c)

let test_minterms () =
  let f = cover1 [ "1-" ] in
  let m = Cover.minterms f in
  checki "two minterms" 2 (Cover.size m);
  checkb "equivalent" true (Cover.equivalent f m)

(* --- Truth tables -------------------------------------------------------- *)

let test_tt_of_cover_and_back () =
  let rng = Util.Rng.create 31 in
  for _ = 1 to 20 do
    let n_in = 2 + Util.Rng.int rng 4 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 6) ~dc_bias:0.3 in
    let tt = Tt.of_cover f in
    let back = Tt.to_minterm_cover tt in
    checkb "roundtrip equivalent" true (Cover.equivalent f back)
  done

let test_tt_ones () =
  let tt = Tt.of_fun ~n_in:3 ~n_out:1 (fun a _ -> a.(0)) in
  checki "half the space" 4 (Tt.ones tt ~output:0)

let test_tt_rejects_large () =
  Alcotest.check_raises "too many inputs"
    (Invalid_argument "Truth_table.create: bad n_in") (fun () ->
      ignore (Tt.create ~n_in:21 ~n_out:1))

(* --- Expr ---------------------------------------------------------------- *)

let test_expr_eval () =
  let e = Expr.(majority3 (v 0) (v 1) (v 2)) in
  checkb "110 -> 1" true (Expr.eval e [| true; true; false |]);
  checkb "100 -> 0" false (Expr.eval e [| true; false; false |])

let test_expr_to_cover_matches_eval () =
  let exprs =
    [
      Expr.(v 0 && v 1);
      Expr.(v 0 || not_ (v 1));
      Expr.(v 0 ^^ v 1 ^^ v 2);
      Expr.(mux ~sel:(v 0) (v 1) (v 2));
      Expr.(majority3 (v 0) (v 1) (v 2));
      Expr.Const true;
      Expr.Const false;
      Expr.(not_ (v 0 && v 1) || (v 2 && v 3));
    ]
  in
  List.iter
    (fun e ->
      let n_in = 4 in
      let f = Expr.to_cover ~n_in e in
      let tt = Tt.of_cover f in
      let expect = Tt.of_fun ~n_in ~n_out:1 (fun a _ -> Expr.eval e a) in
      checkb "cover matches eval" true (Tt.equal tt expect))
    exprs

let test_expr_to_cover_multi () =
  let exprs = [ Expr.(v 0 && v 1); Expr.(v 0 ^^ v 1) ] in
  let f = Expr.to_cover_multi ~n_in:2 exprs in
  checki "two outputs" 2 (Cover.num_outputs f);
  let tt = Tt.of_cover f in
  let expect = Tt.of_fun ~n_in:2 ~n_out:2 (fun a o -> Expr.eval (List.nth exprs o) a) in
  checkb "matches" true (Tt.equal tt expect)

let test_expr_out_of_range () =
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Expr.to_cover: variable out of range") (fun () ->
      ignore (Expr.to_cover ~n_in:2 (Expr.v 5)))

let test_expr_parity_empty () =
  checkb "empty parity is false" false (Expr.eval (Expr.parity []) [||])

(* --- Pla_io -------------------------------------------------------------- *)

let test_pla_parse_basic () =
  let text = ".i 3\n.o 2\n.p 2\n1-0 10\n011 01\n.e\n" in
  let spec = Logic.Pla_io.parse text in
  checki "inputs" 3 spec.Logic.Pla_io.n_in;
  checki "outputs" 2 spec.Logic.Pla_io.n_out;
  checki "on-set cubes" 2 (Cover.size spec.Logic.Pla_io.on_set);
  checki "dc-set empty" 0 (Cover.size spec.Logic.Pla_io.dc_set)

let test_pla_parse_dc_outputs () =
  let text = ".i 2\n.o 2\n11 1-\n" in
  let spec = Logic.Pla_io.parse text in
  checki "on cube" 1 (Cover.size spec.Logic.Pla_io.on_set);
  checki "dc cube" 1 (Cover.size spec.Logic.Pla_io.dc_set)

let test_pla_parse_labels_comments () =
  let text = "# a comment\n.i 2\n.o 1\n.ilb a b\n.ob f\n11 1 # trailing\n.end\n" in
  let spec = Logic.Pla_io.parse text in
  (match spec.Logic.Pla_io.input_labels with
  | Some [| "a"; "b" |] -> ()
  | _ -> Alcotest.fail "labels");
  checki "one cube" 1 (Cover.size spec.Logic.Pla_io.on_set)

let test_pla_parse_errors () =
  let expect_error text =
    match Logic.Pla_io.parse text with
    | exception Logic.Pla_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_error ".o 1\n1 1\n";
  expect_error ".i 2\n.o 1\n111 1\n";
  expect_error ".i 2\n.o 1\n11 11\n";
  expect_error ".i 2\n.o 1\nzz 1\n";
  expect_error ".i 2\n.o 1\n.type xyz\n11 1\n"

let test_pla_roundtrip_random () =
  let rng = Util.Rng.create 5 in
  for _ = 1 to 20 do
    let n_in = 2 + Util.Rng.int rng 5 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let text = Logic.Pla_io.to_string ~on_set:f ~dc_set:(Cover.empty ~n_in ~n_out) () in
    let spec = Logic.Pla_io.parse text in
    checkb "roundtrip equivalent" true (Cover.equivalent f spec.Logic.Pla_io.on_set)
  done

let test_pla_file_io () =
  let f = cover1 [ "1-"; "01" ] in
  let spec = Logic.Pla_io.spec_of_cover f in
  let path = Filename.temp_file "cnfet_test" ".pla" in
  Logic.Pla_io.write_file path spec;
  let spec' = Logic.Pla_io.parse_file path in
  Sys.remove path;
  checkb "file roundtrip" true (Cover.equivalent f spec'.Logic.Pla_io.on_set)


(* --- Bdd ------------------------------------------------------------------ *)

let test_bdd_constants () =
  let man = Logic.Bdd.manager () in
  checkb "zero is zero" true (Logic.Bdd.is_zero (Logic.Bdd.zero man));
  checkb "one is one" true (Logic.Bdd.is_one (Logic.Bdd.one man));
  checkb "not zero = one" true
    (Logic.Bdd.equal (Logic.Bdd.not_ man (Logic.Bdd.zero man)) (Logic.Bdd.one man))

let test_bdd_var_laws () =
  let man = Logic.Bdd.manager () in
  let x = Logic.Bdd.var man 0 and y = Logic.Bdd.var man 1 in
  checkb "x & !x = 0" true
    (Logic.Bdd.is_zero (Logic.Bdd.and_ man x (Logic.Bdd.not_ man x)));
  checkb "x | !x = 1" true
    (Logic.Bdd.is_one (Logic.Bdd.or_ man x (Logic.Bdd.not_ man x)));
  checkb "commutative and" true
    (Logic.Bdd.equal (Logic.Bdd.and_ man x y) (Logic.Bdd.and_ man y x));
  checkb "xor self" true (Logic.Bdd.is_zero (Logic.Bdd.xor man x x));
  checkb "nvar = not var" true
    (Logic.Bdd.equal (Logic.Bdd.nvar man 0) (Logic.Bdd.not_ man x))

let test_bdd_hash_consing () =
  let man = Logic.Bdd.manager () in
  let x = Logic.Bdd.var man 0 and y = Logic.Bdd.var man 1 in
  let a = Logic.Bdd.or_ man (Logic.Bdd.and_ man x y) (Logic.Bdd.and_ man x (Logic.Bdd.not_ man y)) in
  checkb "x&y | x&!y collapses to x" true (Logic.Bdd.equal a x)

let test_bdd_eval_matches_cover () =
  let rng = Util.Rng.create 71 in
  for _ = 1 to 20 do
    let n_in = 2 + Util.Rng.int rng 5 in
    let f = Cover.random rng ~n_in ~n_out:2 ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let man = Logic.Bdd.manager () in
    let bdds = Logic.Bdd.of_cover man f in
    for m = 0 to (1 lsl n_in) - 1 do
      let a = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
      let want = Cover.eval f a in
      for o = 0 to 1 do
        checkb "bdd eval == cover eval" (Util.Bitvec.get want o) (Logic.Bdd.eval bdds.(o) a)
      done
    done
  done

let test_bdd_equivalence_oracle () =
  let rng = Util.Rng.create 72 in
  for _ = 1 to 20 do
    let n_in = 2 + Util.Rng.int rng 5 in
    let f = Cover.random rng ~n_in ~n_out:2 ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let g = Cover.random rng ~n_in ~n_out:2 ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    checkb "bdd vs tt (equal case)" (Tt.equal (Tt.of_cover f) (Tt.of_cover f))
      (Logic.Bdd.equivalent_covers f f);
    checkb "bdd vs tt (general case)" (Tt.equal (Tt.of_cover f) (Tt.of_cover g))
      (Logic.Bdd.equivalent_covers f g)
  done

let test_bdd_sat_count () =
  let man = Logic.Bdd.manager () in
  let x = Logic.Bdd.var man 0 and y = Logic.Bdd.var man 1 in
  let f = Logic.Bdd.or_ man x y in
  Alcotest.check (Alcotest.float 1e-9) "x|y over 2 vars" 3.0 (Logic.Bdd.sat_count man f ~n_vars:2);
  Alcotest.check (Alcotest.float 1e-9) "x|y over 3 vars" 6.0 (Logic.Bdd.sat_count man f ~n_vars:3);
  Alcotest.check (Alcotest.float 1e-9) "zero" 0.0
    (Logic.Bdd.sat_count man (Logic.Bdd.zero man) ~n_vars:4)

let test_bdd_any_sat () =
  let man = Logic.Bdd.manager () in
  checkb "zero unsat" true (Logic.Bdd.any_sat (Logic.Bdd.zero man) = None);
  let x = Logic.Bdd.var man 0 and y = Logic.Bdd.nvar man 1 in
  let f = Logic.Bdd.and_ man x y in
  match Logic.Bdd.any_sat f with
  | Some assignment ->
    checkb "x=1 in witness" true (List.mem (0, true) assignment);
    checkb "y=0 in witness" true (List.mem (1, false) assignment)
  | None -> Alcotest.fail "expected witness"

let test_bdd_parity_size () =
  (* Parity has a linear-size BDD: 2n-1 internal nodes. *)
  let man = Logic.Bdd.manager () in
  let f = Logic.Bdd.of_cover_output man (Mcnc.Generators.xor_n 8) 0 in
  checki "xor8 node count" 15 (Logic.Bdd.node_count man f)

let test_bdd_large_inputs () =
  (* 17-input functions are beyond truth tables; the BDD handles them. *)
  let rng = Util.Rng.create 73 in
  let f = Cover.random rng ~n_in:17 ~n_out:2 ~n_cubes:30 ~dc_bias:0.55 in
  let m = Espresso.Minimize.cover f in
  checkb "minimization preserved at 17 inputs" true (Logic.Bdd.equivalent_covers f m)

(* --- Blif --------------------------------------------------------------------- *)

let test_blif_flat_roundtrip () =
  let rng = Util.Rng.create 81 in
  for _ = 1 to 15 do
    let n_in = 2 + Util.Rng.int rng 4 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let b = Logic.Blif.of_cover ~name:"t" f in
    let b' = Logic.Blif.parse (Logic.Blif.to_string b) in
    checkb "roundtrip equivalent" true (Cover.equivalent f (Logic.Blif.to_cover b'))
  done

let test_blif_parse_features () =
  let text =
    "# comment\n.model demo\n.inputs a b \\\n c\n.outputs f\n.names a b c f\n1-0 1\n011 1\n.end\n"
  in
  let b = Logic.Blif.parse text in
  Alcotest.check Alcotest.string "model name" "demo" b.Logic.Blif.name;
  checki "3 inputs (continuation handled)" 3 (Array.length b.Logic.Blif.inputs);
  checkb "f(1,1,0)" true (Logic.Blif.eval b [| true; true; false |]).(0);
  checkb "f(0,1,1)" true (Logic.Blif.eval b [| false; true; true |]).(0);
  checkb "f(0,0,0)" false (Logic.Blif.eval b [| false; false; false |]).(0)

let test_blif_multilevel_eval () =
  (* n = a AND b; f = n OR c *)
  let text =
    ".model two\n.inputs a b c\n.outputs f\n.names a b n\n11 1\n.names n c f\n1- 1\n-1 1\n.end\n"
  in
  let b = Logic.Blif.parse text in
  let expect a_ b_ c_ = (a_ && b_) || c_ in
  for m = 0 to 7 do
    let a_ = m land 1 <> 0 and b_ = m land 2 <> 0 and c_ = m land 4 <> 0 in
    checkb "multi-level eval" (expect a_ b_ c_) (Logic.Blif.eval b [| a_; b_; c_ |]).(0)
  done

let test_blif_constants () =
  let text = ".model k\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n" in
  let b = Logic.Blif.parse text in
  let out = Logic.Blif.eval b [| true |] in
  checkb "constant 1" true out.(0);
  checkb "constant 0" false out.(1)

let test_blif_errors () =
  let expect_error text =
    match Logic.Blif.parse text with
    | exception Logic.Blif.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_error ".model m\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n";
  expect_error ".model m\n.inputs a\n.outputs f\n11 1\n";
  expect_error ".model m\n.latch a b\n"

(* --- qcheck properties ---------------------------------------------------- *)

let arb_cover =
  let gen =
    QCheck.Gen.(
      let* n_in = int_range 1 6 in
      let* n_out = int_range 1 3 in
      let* n_cubes = int_range 0 10 in
      let* seed = int_bound 1_000_000 in
      return (Cover.random (Util.Rng.create seed) ~n_in ~n_out ~n_cubes ~dc_bias:0.4))
  in
  QCheck.make ~print:Cover.to_string gen

let prop_union_covers_both =
  QCheck.Test.make ~name:"cover union covers both operands" ~count:100 arb_cover (fun f ->
      let g = Cover.union f f in
      Cover.covers g f)

let prop_scc_preserves_function =
  QCheck.Test.make ~name:"single-cube containment preserves function" ~count:100 arb_cover
    (fun f -> Cover.equivalent f (Cover.single_cube_containment f))

let prop_complement_is_complement =
  QCheck.Test.make ~name:"complement covers exactly the rest" ~count:100 arb_cover (fun f ->
      let c = Cover.complement f in
      Cover.tautology (Cover.union f c)
      &&
      let tf = Tt.of_cover f and tc = Tt.of_cover c in
      let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
      let ok = ref true in
      for m = 0 to (1 lsl n_in) - 1 do
        for o = 0 to n_out - 1 do
          if Tt.get tf ~minterm:m ~output:o && Tt.get tc ~minterm:m ~output:o then ok := false
        done
      done;
      !ok)

let prop_sharp_partitions =
  QCheck.Test.make ~name:"sharp: (a\\b) ∪ (a∩b) ≡ a" ~count:100
    (QCheck.pair arb_cover arb_cover) (fun (a, b0) ->
      (* regenerate b with a's arity *)
      let b =
        Cover.random
          (Util.Rng.create (Cover.size b0 + (17 * Cover.size a)))
          ~n_in:(Cover.num_inputs a) ~n_out:(Cover.num_outputs a)
          ~n_cubes:(max 1 (Cover.size b0)) ~dc_bias:0.4
      in
      let diff = Cover.sharp a b in
      (* diff ∩ b = ∅ and diff ∪ b ⊇ a *)
      let tt_d = Tt.of_cover diff and tt_b = Tt.of_cover b and tt_a = Tt.of_cover a in
      let n_in = Cover.num_inputs a and n_out = Cover.num_outputs a in
      let ok = ref true in
      for m = 0 to (1 lsl n_in) - 1 do
        for o = 0 to n_out - 1 do
          let da = Tt.get tt_a ~minterm:m ~output:o in
          let dd = Tt.get tt_d ~minterm:m ~output:o in
          let db = Tt.get tt_b ~minterm:m ~output:o in
          if dd <> (da && not db) then ok := false
        done
      done;
      !ok)

let prop_minterms_equivalent =
  QCheck.Test.make ~name:"minterm expansion is equivalent" ~count:50 arb_cover (fun f ->
      Cover.equivalent f (Cover.minterms f))

(* --- Differential: packed kernel vs byte-per-literal reference ----------- *)

module Naive = Logic.Cube_naive

let random_literal rng =
  match Util.Rng.int rng 3 with 0 -> Cube.Zero | 1 -> Cube.One | _ -> Cube.Dc

let random_outs rng n_out =
  let on = List.filter (fun _ -> Util.Rng.bool rng) (List.init n_out Fun.id) in
  let on = match on with [] -> [ Util.Rng.int rng n_out ] | l -> l in
  Util.Bitvec.of_list n_out on

(* The same random cube in both representations. *)
let random_pair rng ~n_in ~n_out =
  let lits = List.init n_in (fun _ -> random_literal rng) in
  let outs = random_outs rng n_out in
  (Cube.of_literals lits ~outs, Naive.of_literals lits ~outs)

let sign (x : int) = compare x 0
let str_opt = function None -> "none" | Some s -> s

(* Widths straddling the 31-literal word boundary (31 fields per 63-bit
   word), plus small and multi-word cases. *)
let diff_widths = [ 1; 2; 5; 17; 30; 31; 32; 33; 61; 62; 63; 64; 100 ]

let test_differential_unary () =
  let rng = Util.Rng.create 4242 in
  List.iter
    (fun n_in ->
      for _ = 1 to 20 do
        let p, n = random_pair rng ~n_in ~n_out:3 in
        checki "literal_count" (Naive.literal_count n) (Cube.literal_count p);
        Alcotest.check Alcotest.string "to_string" (Naive.to_string n)
          (Cube.to_string p);
        for i = 0 to n_in - 1 do
          checkb "get" true (Cube.get p i = Naive.get n i);
          checki "raw_get" (Naive.raw_get n i) (Cube.raw_get p i)
        done;
        let i = Util.Rng.int rng n_in in
        let v = random_literal rng in
        Alcotest.check Alcotest.string "set"
          (Naive.to_string (Naive.set n i v))
          (Cube.to_string (Cube.set p i v));
        for _ = 1 to 8 do
          let m = Array.init n_in (fun _ -> Util.Rng.bool rng) in
          checkb "matches" (Naive.matches n m) (Cube.matches p m)
        done
      done)
    diff_widths

let test_differential_binary () =
  let rng = Util.Rng.create 77077 in
  List.iter
    (fun n_in ->
      for _ = 1 to 30 do
        let pa, na = random_pair rng ~n_in ~n_out:2 in
        let pb, nb =
          (* Half the time derive b from a (widen one literal) so
             containment and low distances actually occur. *)
          if Util.Rng.bool rng then random_pair rng ~n_in ~n_out:2
          else
            let i = Util.Rng.int rng n_in in
            (Cube.set pa i Cube.Dc, Naive.set na i Cube.Dc)
        in
        checkb "equal" (Naive.equal na nb) (Cube.equal pa pb);
        checki "compare sign"
          (sign (Naive.compare na nb))
          (sign (Cube.compare pa pb));
        checkb "contains" (Naive.contains na nb) (Cube.contains pa pb);
        checkb "contains rev" (Naive.contains nb na) (Cube.contains pb pa);
        checki "distance" (Naive.distance na nb) (Cube.distance pa pb);
        checkb "intersects"
          (Naive.intersect na nb <> None)
          (Cube.intersects pa pb);
        Alcotest.check Alcotest.string "intersect"
          (str_opt (Option.map Naive.to_string (Naive.intersect na nb)))
          (str_opt (Option.map Cube.to_string (Cube.intersect pa pb)));
        Alcotest.check Alcotest.string "supercube2"
          (Naive.to_string (Naive.supercube2 na nb))
          (Cube.to_string (Cube.supercube2 pa pb));
        Alcotest.check Alcotest.string "cofactor"
          (str_opt (Option.map Naive.to_string (Naive.cofactor na ~by:nb)))
          (str_opt (Option.map Cube.to_string (Cube.cofactor pa ~by:pb)))
      done)
    diff_widths

let test_differential_of_cube () =
  let rng = Util.Rng.create 99 in
  List.iter
    (fun n_in ->
      for _ = 1 to 10 do
        let p, n = random_pair rng ~n_in ~n_out:4 in
        checkb "of_cube equals of_literals" true (Naive.equal n (Naive.of_cube p))
      done)
    diff_widths

(* --- Cover cached-count and union regressions ----------------------------- *)

let recount c =
  List.fold_left (fun acc cb -> acc + Cube.literal_count cb) 0 (Cover.cubes c)

let test_cover_union_arity () =
  let a = cover1 [ "1-"; "01" ] in
  let wide = Cover.make ~n_in:3 ~n_out:1 [ c1 "1-0" ] in
  Alcotest.check_raises "input arity mismatch"
    (Invalid_argument "Cover.union: arity mismatch") (fun () ->
      ignore (Cover.union a wide));
  let c2 = cube_of_string "--" (Util.Bitvec.of_list 2 [ 0 ]) in
  let two_out = Cover.make ~n_in:2 ~n_out:2 [ c2 ] in
  Alcotest.check_raises "output arity mismatch"
    (Invalid_argument "Cover.union: arity mismatch") (fun () ->
      ignore (Cover.union a two_out))

let test_cover_cached_counts () =
  let a = cover1 [ "1-"; "01" ] in
  let b = cover1 [ "00"; "--" ] in
  (* Force a's cache but leave b's sentinel: union must handle both. *)
  checki "a lits" (recount a) (Cover.literal_total a);
  let u = Cover.union a b in
  checki "union size" 4 (Cover.size u);
  checki "union lits" (recount u) (Cover.literal_total u);
  let u2 = Cover.union a (cover1 [ "11" ]) in
  ignore (Cover.literal_total (cover1 [ "11" ]));
  checki "union lits (one side cached)" (recount u2) (Cover.literal_total u2);
  let w = Cover.add u (c1 "11") in
  checki "add size" 5 (Cover.size w);
  checki "add lits" (recount w) (Cover.literal_total w);
  let s = Cover.single_cube_containment w in
  checki "scc lits" (recount s) (Cover.literal_total s);
  checki "scc size" (List.length (Cover.cubes s)) (Cover.size s)

let () =
  Alcotest.run "logic"
    [
      ( "cube",
        [
          Alcotest.test_case "roundtrip" `Quick test_cube_roundtrip;
          Alcotest.test_case "functional set" `Quick test_cube_set_functional;
          Alcotest.test_case "containment" `Quick test_cube_containment;
          Alcotest.test_case "containment with outputs" `Quick test_cube_containment_outputs;
          Alcotest.test_case "intersect" `Quick test_cube_intersect;
          Alcotest.test_case "output-disjoint intersect" `Quick
            test_cube_intersect_output_disjoint;
          Alcotest.test_case "distance" `Quick test_cube_distance;
          Alcotest.test_case "supercube" `Quick test_cube_supercube2;
          Alcotest.test_case "cofactor" `Quick test_cube_cofactor;
          Alcotest.test_case "matches" `Quick test_cube_matches;
          Alcotest.test_case "universe" `Quick test_cube_universe;
        ] );
      ( "cover",
        [
          Alcotest.test_case "eval" `Quick test_cover_eval;
          Alcotest.test_case "literal total" `Quick test_cover_literal_total;
          Alcotest.test_case "single-cube containment" `Quick test_cover_scc;
          Alcotest.test_case "restrict output" `Quick test_cover_restrict_output;
        ] );
      ( "tautology",
        [
          Alcotest.test_case "simple" `Quick test_tautology_simple;
          Alcotest.test_case "needs recursion" `Quick test_tautology_needs_recursion;
          Alcotest.test_case "unate leaf rule" `Quick test_tautology_unate_leaf;
          Alcotest.test_case "multi-output" `Quick test_tautology_multi_output;
        ] );
      ( "complement",
        [
          Alcotest.test_case "single cube" `Quick test_complement_single_cube;
          Alcotest.test_case "empty / universe" `Quick test_complement_empty_and_universe;
          Alcotest.test_case "involution (random)" `Quick test_complement_involution_random;
          Alcotest.test_case "partitions space (random)" `Quick
            test_complement_partitions_space;
        ] );
      ( "covering",
        [
          Alcotest.test_case "covers_cube" `Quick test_covers_cube;
          Alcotest.test_case "cooperative covering" `Quick test_covers_cube_needs_two;
          Alcotest.test_case "equivalent" `Quick test_equivalent;
          Alcotest.test_case "minterms" `Quick test_minterms;
        ] );
      ( "truth-table",
        [
          Alcotest.test_case "cover roundtrip" `Quick test_tt_of_cover_and_back;
          Alcotest.test_case "ones" `Quick test_tt_ones;
          Alcotest.test_case "rejects large" `Quick test_tt_rejects_large;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "to_cover matches eval" `Quick test_expr_to_cover_matches_eval;
          Alcotest.test_case "multi-output" `Quick test_expr_to_cover_multi;
          Alcotest.test_case "out of range" `Quick test_expr_out_of_range;
          Alcotest.test_case "empty parity" `Quick test_expr_parity_empty;
        ] );
      ( "pla-io",
        [
          Alcotest.test_case "parse basic" `Quick test_pla_parse_basic;
          Alcotest.test_case "parse dc outputs" `Quick test_pla_parse_dc_outputs;
          Alcotest.test_case "labels and comments" `Quick test_pla_parse_labels_comments;
          Alcotest.test_case "parse errors" `Quick test_pla_parse_errors;
          Alcotest.test_case "roundtrip (random)" `Quick test_pla_roundtrip_random;
          Alcotest.test_case "file io" `Quick test_pla_file_io;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "constants" `Quick test_bdd_constants;
          Alcotest.test_case "variable laws" `Quick test_bdd_var_laws;
          Alcotest.test_case "hash consing collapses" `Quick test_bdd_hash_consing;
          Alcotest.test_case "eval matches cover" `Quick test_bdd_eval_matches_cover;
          Alcotest.test_case "equivalence oracle" `Quick test_bdd_equivalence_oracle;
          Alcotest.test_case "sat count" `Quick test_bdd_sat_count;
          Alcotest.test_case "any sat" `Quick test_bdd_any_sat;
          Alcotest.test_case "parity linear size" `Quick test_bdd_parity_size;
          Alcotest.test_case "17-input oracle" `Quick test_bdd_large_inputs;
        ] );
      ( "blif",
        [
          Alcotest.test_case "flat roundtrip" `Quick test_blif_flat_roundtrip;
          Alcotest.test_case "parse features" `Quick test_blif_parse_features;
          Alcotest.test_case "multi-level eval" `Quick test_blif_multilevel_eval;
          Alcotest.test_case "constants" `Quick test_blif_constants;
          Alcotest.test_case "errors" `Quick test_blif_errors;
        ] );
      ( "differential",
        [
          Alcotest.test_case "unary ops vs naive" `Quick test_differential_unary;
          Alcotest.test_case "binary ops vs naive" `Quick test_differential_binary;
          Alcotest.test_case "of_cube roundtrip" `Quick test_differential_of_cube;
          Alcotest.test_case "union arity checks" `Quick test_cover_union_arity;
          Alcotest.test_case "cached counts" `Quick test_cover_cached_counts;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_union_covers_both;
          QCheck_alcotest.to_alcotest prop_scc_preserves_function;
          QCheck_alcotest.to_alcotest prop_complement_is_complement;
          QCheck_alcotest.to_alcotest prop_minterms_equivalent;
          QCheck_alcotest.to_alcotest prop_sharp_partitions;
        ] );
    ]
