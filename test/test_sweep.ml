(* The population-sweep battery (lib/sweep): the stage engine's
   composition and error-containment semantics, the sharded driver's
   determinism / checkpoint-resume / failure-isolation guarantees, Pareto
   dominance invariants, and a byte-exact golden regression on the quick
   sweep's front view.

   Set DUMP_SWEEP=<path> to rewrite the golden JSON after an intentional
   change to the swept pipeline or the report format. *)

module Stage = Sweep.Stage
module Drive = Sweep.Drive
module Report = Sweep.Report
module Pareto = Sweep.Pareto

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains_substr hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* A fast pipeline substitute: no silicon, just arithmetic — used
   wherever the battery needs sweeps by the dozen. *)
let toy_item config ~index value =
  ignore config;
  {
    Drive.it_index = index;
    it_name = Printf.sprintf "toy%d" index;
    it_n_in = 2;
    it_n_out = 1;
    it_target_products = 1;
    it_achieved_products = 1;
    it_products = 1;
    it_area = value;
    it_blocks = 1;
    it_grid = 2;
    it_frequency_hz = float_of_int (1000 - value);
    it_yield = 1.0;
    it_stage_s = [];
  }

let toy_pipeline config ~index =
  Stage.(
    stage "toy.seed" (fun () -> index * 7)
    >>> stage "toy.wrap" (fun v -> toy_item config ~index (v mod 101)))

exception Planted of int

(* Like [toy_pipeline], but the planted stage raises on [bad] indices. *)
let planted_pipeline bad config ~index =
  Stage.(
    stage "toy.seed" (fun () -> index * 7)
    >>> stage "toy.maybe-explode" (fun v ->
            if List.mem index bad then raise (Planted index) else v)
    >>> stage "toy.wrap" (fun v -> toy_item config ~index (v mod 101)))

let tiny ?(profiles = 6) ?(jobs = 1) ?(seed = 11) ?checkpoint () =
  {
    Drive.default with
    Drive.profiles;
    seed;
    jobs;
    window = 2;
    space = Drive.tiny_space;
    yield_trials = 4;
    checkpoint;
  }

(* --- Stage: composition ------------------------------------------------------ *)

let test_stage_composition_order () =
  let trace = ref [] in
  let observe ~stage ~dur_s:_ = trace := stage :: !trace in
  let p =
    Stage.(
      stage "a" (fun x -> x + 1)
      >>> stage "b" (fun x -> x * 10)
      >>> pure (fun x -> x - 5)
      >>> stage "c" string_of_int)
  in
  checks "value threaded through every stage" "15" (Stage.exec_exn ~observe p 1);
  Alcotest.(check (list string)) "stages observed in execution order" [ "a"; "b"; "c" ]
    (List.rev !trace);
  Alcotest.(check (list string)) "names lists stages in order" [ "a"; "b"; "c" ] (Stage.names p)

let test_stage_first_and_dyn () =
  (* [first] threads a context pair; [dyn] picks the segment from the
     flowing value. *)
  let inner = Stage.(stage "double" (fun x -> x * 2)) in
  let p = Stage.(first inner >>> pure (fun (x, ctx) -> x + ctx)) in
  checki "first applies to the left component" 25 (Stage.exec_exn p (10, 5));
  let dynp =
    Stage.(
      dyn "pick" (fun x ->
          if x >= 0 then stage "pos" (fun x -> x + 1) else stage "neg" (fun x -> x - 1)))
  in
  checki "dyn positive branch" 8 (Stage.exec_exn dynp 7);
  checki "dyn negative branch" (-8) (Stage.exec_exn dynp (-7));
  checkb "dyn label appears in names" true (List.mem "pick" Stage.(names dynp))

let test_stage_error_containment () =
  let p =
    Stage.(
      stage "ok" (fun x -> x + 1)
      >>> stage "boom" (fun _ -> failwith "planted")
      >>> stage "never" (fun x -> x))
  in
  (match Stage.exec p 1 with
  | Ok _ -> Alcotest.fail "raising stage must not produce a value"
  | Error f ->
    checks "failing stage named" "boom" f.Stage.stage;
    checkb "error text kept" true (contains_substr f.Stage.error "planted"));
  (* exec_exn is exception-transparent: the original exception escapes
     unwrapped, exactly as if the stages were plain function calls. *)
  (match Stage.exec_exn p 1 with
  | _ -> Alcotest.fail "exec_exn must raise"
  | exception Failure msg -> checks "exec_exn re-raises the original" "planted" msg);
  (* A raising stage is an error datum, not a latency sample. *)
  let seen = ref [] in
  let observe ~stage ~dur_s:_ = seen := stage :: !seen in
  (match Stage.exec ~observe p 1 with Ok _ | Error _ -> ());
  Alcotest.(check (list string)) "only successful stages observed" [ "ok" ] (List.rev !seen)

(* --- Drive: grid, rngs, json ------------------------------------------------- *)

let test_profile_grid_tiling () =
  let space = Drive.quick_space in
  (* Row-major over inputs × outputs × products, wrapping at the cell
     count. *)
  let p0 = Drive.profile_for space 0 in
  checki "cell 0 inputs" 5 p0.Mcnc.Profiles.n_in;
  checki "cell 0 outputs" 1 p0.Mcnc.Profiles.n_out;
  checki "cell 0 products" 6 p0.Mcnc.Profiles.n_products;
  let p1 = Drive.profile_for space 1 in
  checki "cell 1 varies products first" 10 p1.Mcnc.Profiles.n_products;
  let p2 = Drive.profile_for space 2 in
  checki "cell 2 advances outputs" 2 p2.Mcnc.Profiles.n_out;
  let p4 = Drive.profile_for space 4 in
  checki "cell 4 advances inputs" 6 p4.Mcnc.Profiles.n_in;
  checkb "tiling wraps" true (Drive.profile_for space 8 = p0);
  checkb "names embed index and shape" true (Drive.name_for space 3 = "p00003-5x2x10")

let test_item_rng_keying () =
  let series rng = Array.init 4 (fun _ -> Util.Rng.bits64 rng) in
  let a = series (Drive.item_rng ~seed:1 ~salt:0 42) in
  let b = series (Drive.item_rng ~seed:1 ~salt:0 42) in
  checkb "same key, same stream" true (a = b);
  checkb "salt separates streams" false (a = series (Drive.item_rng ~seed:1 ~salt:1 42));
  checkb "index separates streams" false (a = series (Drive.item_rng ~seed:1 ~salt:0 43));
  checkb "seed separates streams" false (a = series (Drive.item_rng ~seed:2 ~salt:0 42))

let test_item_json_roundtrip () =
  let it =
    {
      (toy_item (tiny ()) ~index:3 17) with
      Drive.it_stage_s = [ ("a", 0.25); ("b", 1e-6) ];
      it_frequency_hz = 123456789.123456789;
      it_yield = 0.875;
    }
  in
  (match Drive.item_of_json (Drive.item_json it) with
  | Some it' -> checkb "roundtrip exact (floats included)" true (it = it')
  | None -> Alcotest.fail "item JSON must parse back");
  checkb "missing field rejected" true
    (Drive.item_of_json (Assess.Json.Obj [ ("index", Assess.Json.Number 1.0) ]) = None)

(* --- Drive: the sharded run --------------------------------------------------- *)

let test_planted_failure_contained () =
  let config = tiny ~profiles:6 ~jobs:2 () in
  let r = Drive.run ~pipeline:(planted_pipeline [ 2; 4 ]) config in
  checki "failed items recorded" 2 (List.length r.Drive.r_failures);
  checki "surviving items all complete" 4 (List.length r.Drive.r_items);
  let f = List.hd r.Drive.r_failures in
  checki "failure carries the index" 2 f.Drive.fl_index;
  checks "failure names the planted stage" "toy.maybe-explode" f.Drive.fl_stage;
  checkb "failure keeps the exception text" true (contains_substr f.Drive.fl_error "Planted");
  (* Item values are unaffected by their neighbours' failures (latency
     samples excepted — those are wall-clock). *)
  let clean = Drive.run ~pipeline:toy_pipeline config in
  let strip (it : Drive.item) = { it with Drive.it_stage_s = [] } in
  List.iter
    (fun (it : Drive.item) ->
      let twin = List.find (fun c -> c.Drive.it_index = it.Drive.it_index) clean.Drive.r_items in
      checkb "survivor identical to clean run" true (strip it = strip twin))
    r.Drive.r_items

let test_jobs_and_window_invariance () =
  let det config = Assess.Json.to_string (Report.deterministic_json (Drive.run config)) in
  let base = tiny ~profiles:5 ~jobs:1 () in
  let a = det base in
  checkb "jobs=2 identical" true (a = det { base with Drive.jobs = 2 });
  checkb "window=1 identical" true (a = det { base with Drive.jobs = 2; window = 1 })

let test_checkpoint_resume_equals_uninterrupted () =
  let path = Filename.temp_file "sweep_ck" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let config = tiny ~profiles:6 ~checkpoint:path () in
      let uninterrupted = Drive.run ~pipeline:toy_pipeline { config with Drive.checkpoint = None } in
      (* First attempt dies on half the population (simulated interruption:
         those indices are simply missing from the checkpoint). *)
      let crashed = Drive.run ~pipeline:(planted_pipeline [ 3; 4; 5 ]) config in
      checki "first attempt checkpointed the survivors" 3 (List.length crashed.Drive.r_items);
      (* Second attempt heals: resumes the survivors, recomputes only the
         missing indices. *)
      let resumed = Drive.run ~pipeline:toy_pipeline config in
      checki "survivors loaded, not recomputed" 3 resumed.Drive.r_resumed;
      checki "population complete after resume" 6 (List.length resumed.Drive.r_items);
      checkb "resumed population identical to uninterrupted" true
        (Assess.Json.to_string (Report.deterministic_json resumed)
        = Assess.Json.to_string (Report.deterministic_json uninterrupted)));
  (* A config mismatch must not resume from a stale file. *)
  let path = Filename.temp_file "sweep_ck2" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let config = tiny ~profiles:4 ~checkpoint:path () in
      ignore (Drive.run ~pipeline:toy_pipeline config);
      let other = { config with Drive.seed = config.Drive.seed + 1 } in
      let r = Drive.run ~pipeline:toy_pipeline other in
      checki "stale checkpoint restarted, not resumed" 0 r.Drive.r_resumed)

let test_population_prefix_stable () =
  (* Growing the population must not disturb earlier items: item values
     are keyed by index, never by population size. *)
  let strip (it : Drive.item) = { it with Drive.it_stage_s = [] } in
  let small = Drive.run (tiny ~profiles:3 ()) in
  let large = Drive.run (tiny ~profiles:6 ()) in
  List.iter2
    (fun a b -> checkb "prefix item identical" true (strip a = strip b))
    small.Drive.r_items
    (List.filteri (fun i _ -> i < 3) large.Drive.r_items)

(* --- Pareto ------------------------------------------------------------------- *)

let test_pareto_dominance_invariants () =
  let rng = Util.Rng.create 99 in
  let maximize = [| true; false; true |] in
  let pt () = Array.init 3 (fun _ -> float_of_int (Util.Rng.int rng 5)) in
  for _ = 1 to 200 do
    let a = pt () and b = pt () in
    checkb "irreflexive" false (Pareto.dominates ~maximize a a);
    checkb "antisymmetric" false
      (Pareto.dominates ~maximize a b && Pareto.dominates ~maximize b a)
  done;
  let pts = List.init 60 (fun _ -> pt ()) in
  let front = Pareto.front ~maximize ~values:Fun.id pts in
  checkb "front nonempty on nonempty input" true (front <> []);
  List.iter
    (fun f ->
      checkb "front point undominated" false
        (List.exists (fun p -> Pareto.dominates ~maximize p f) pts))
    front;
  List.iter
    (fun p ->
      if not (List.memq p front) then
        checkb "off-front point dominated by someone" true
          (List.exists (fun q -> Pareto.dominates ~maximize q p) pts))
    pts

let test_pareto_known_front () =
  (* area min × frequency max on four hand-placed points. *)
  let pts = [ (10.0, 5.0); (10.0, 7.0); (12.0, 7.0); (9.0, 1.0) ] in
  let front =
    Pareto.front ~maximize:[| false; true |] ~values:(fun (a, f) -> [| a; f |]) pts
  in
  checkb "dominated corner dropped" true (front = [ (10.0, 7.0); (9.0, 1.0) ]);
  (* Duplicated optima both survive (strict dominance). *)
  let dup = [ (1.0, 1.0); (1.0, 1.0) ] in
  checki "duplicates co-exist on the front" 2
    (List.length (Pareto.front ~maximize:[| false; true |] ~values:(fun (a, f) -> [| a; f |]) dup))

(* --- Report -------------------------------------------------------------------- *)

let test_stage_stats_percentiles () =
  let item durs = { (toy_item (tiny ()) ~index:0 1) with Drive.it_stage_s = durs } in
  let items = List.init 10 (fun i -> item [ ("s", float_of_int (i + 1)) ]) in
  (match Report.stage_stats items with
  | [ s ] ->
    checks "stage name" "s" s.Report.st_name;
    checki "sample count" 10 s.Report.st_count;
    Alcotest.(check (float 1e-9)) "p50 nearest-rank" 5.0 s.Report.st_p50_s;
    Alcotest.(check (float 1e-9)) "p95 nearest-rank" 10.0 s.Report.st_p95_s
  | l -> Alcotest.failf "expected one stage, got %d" (List.length l))

let test_merge_metrics () =
  let m name v = Assess.Run.metric name [| v |] in
  let merged = Report.merge_metrics [ [ m "a" 1.0; m "b" 2.0 ]; [ m "a" 3.0 ] ] in
  (match List.find_opt (fun (x : Assess.Run.metric) -> x.Assess.Run.name = "a") merged with
  | Some a -> checkb "samples zipped across repeats" true (a.Assess.Run.samples = [| 1.0; 3.0 |])
  | None -> Alcotest.fail "metric a missing");
  checki "metric order preserved" 2 (List.length merged)

(* --- golden regression ---------------------------------------------------------- *)

let golden_path name =
  if Sys.file_exists (Filename.concat "golden" name) then Filename.concat "golden" name
  else Filename.concat "test/golden" name

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let test_golden_quick_front () =
  (* The real pipeline, quick population, fixed seed: the front view must
     match the checked-in bytes on any machine at any job count. *)
  let r = Drive.run Drive.quick in
  checki "quick sweep fully succeeds" 0 (List.length r.Drive.r_failures);
  let json = Assess.Json.to_string ~indent:2 (Report.front_json r) ^ "\n" in
  (match Sys.getenv_opt "DUMP_SWEEP" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc json;
    close_out oc
  | None -> ());
  let golden = read_file (golden_path "sweep_quick.json") in
  if json <> golden then
    Alcotest.failf
      "quick-sweep front drifted from golden/sweep_quick.json (%d vs %d bytes). If the \
       change is intentional, regenerate with: DUMP_SWEEP=test/golden/sweep_quick.json dune \
       exec test/test_sweep.exe -- test golden"
      (String.length json) (String.length golden)

(* --- driver --------------------------------------------------------------------- *)

let () =
  Alcotest.run "sweep"
    [
      ( "stage",
        [
          Alcotest.test_case "composition and order" `Quick test_stage_composition_order;
          Alcotest.test_case "first and dyn" `Quick test_stage_first_and_dyn;
          Alcotest.test_case "error containment" `Quick test_stage_error_containment;
        ] );
      ( "drive",
        [
          Alcotest.test_case "profile grid tiling" `Quick test_profile_grid_tiling;
          Alcotest.test_case "item rng keying" `Quick test_item_rng_keying;
          Alcotest.test_case "item json roundtrip" `Quick test_item_json_roundtrip;
          Alcotest.test_case "planted failure contained" `Quick test_planted_failure_contained;
          Alcotest.test_case "jobs/window invariance" `Quick test_jobs_and_window_invariance;
          Alcotest.test_case "checkpoint resume = uninterrupted" `Quick
            test_checkpoint_resume_equals_uninterrupted;
          Alcotest.test_case "population prefix stable" `Quick test_population_prefix_stable;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominance invariants" `Quick test_pareto_dominance_invariants;
          Alcotest.test_case "known front" `Quick test_pareto_known_front;
        ] );
      ( "report",
        [
          Alcotest.test_case "stage stats percentiles" `Quick test_stage_stats_percentiles;
          Alcotest.test_case "merge metrics" `Quick test_merge_metrics;
        ] );
      ("golden", [ Alcotest.test_case "quick front bytes" `Quick test_golden_quick_front ]);
    ]
