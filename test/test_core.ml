(* Tests for the cnfet core library: GNOR gates and planes (functional and
   switch-level), PLA mapping, programming protocol, crossbar, area model,
   Whirlpool PLA. *)

module G = Cnfet.Gnor
module Plane = Cnfet.Plane
module Pla = Cnfet.Pla
module Cover = Logic.Cover
module Expr = Logic.Expr
module A = Device.Ambipolar

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- GNOR functional model ---------------------------------------------- *)

let test_gnor_modes_map_to_polarities () =
  checkb "pass is n" true (G.mode_polarity G.Pass = A.N_type);
  checkb "invert is p" true (G.mode_polarity G.Invert = A.P_type);
  checkb "drop is off" true (G.mode_polarity G.Drop = A.Off_state);
  List.iter
    (fun m -> checkb "roundtrip" true (G.mode_of_polarity (G.mode_polarity m) = m))
    [ G.Pass; G.Invert; G.Drop ]

let test_gnor_pg_voltages () =
  let p = A.default in
  checkf "pass at V+" (A.v_plus p) (G.mode_pg_voltage p G.Pass);
  checkf "invert at V-" (A.v_minus p) (G.mode_pg_voltage p G.Invert);
  checkf "drop at V0" (A.v_zero p) (G.mode_pg_voltage p G.Drop)

let test_gnor_eval_nor () =
  let modes = [| G.Pass; G.Pass |] in
  checkb "00" true (G.eval_functional modes [| false; false |]);
  checkb "10" false (G.eval_functional modes [| true; false |]);
  checkb "01" false (G.eval_functional modes [| false; true |]);
  checkb "11" false (G.eval_functional modes [| true; true |])

let test_gnor_eval_xor_via_controls () =
  (* Paper §3: NOR(C1 ⊕ A, C2 ⊕ B) with suitable controls gives EXOR-family
     functions; with one input inverted the gate is A'B + ... check
     NOR(A, B') = A' B. *)
  let modes = [| G.Pass; G.Invert |] in
  checkb "01 -> 1" true (G.eval_functional modes [| false; true |]);
  checkb "00 -> 0" false (G.eval_functional modes [| false; false |]);
  checkb "11 -> 0" false (G.eval_functional modes [| true; true |])

let test_gnor_eval_drop () =
  let modes = [| G.Pass; G.Drop |] in
  checkb "dropped input ignored (1)" false (G.eval_functional modes [| true; true |]);
  checkb "dropped input ignored (0)" true (G.eval_functional modes [| false; true |])

let test_gnor_eval_all_dropped () =
  checkb "all dropped gives 1" true (G.eval_functional [| G.Drop; G.Drop |] [| true; true |])

let test_gnor_eval_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Gnor.eval_functional") (fun () ->
      ignore (G.eval_functional [| G.Pass |] [| true; false |]))

(* --- GNOR switch level: Fig. 2 ------------------------------------------- *)

let test_gnor_fig2_configuration () =
  (* Y = NOR(A, B', D) with C dropped: the paper's configured example. *)
  let modes = [| G.Pass; G.Invert; G.Drop; G.Pass |] in
  for m = 0 to 15 do
    let inputs = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    let expect = not (inputs.(0) || not inputs.(1) || inputs.(3)) in
    checkb
      (Printf.sprintf "fig2 pattern %d" m)
      expect
      (G.simulate modes inputs)
  done

let test_gnor_switch_matches_functional_random () =
  let rng = Util.Rng.create 808 in
  for _ = 1 to 40 do
    let n = 1 + Util.Rng.int rng 5 in
    let modes =
      Array.init n (fun _ ->
          match Util.Rng.int rng 3 with 0 -> G.Pass | 1 -> G.Invert | _ -> G.Drop)
    in
    let inputs = Array.init n (fun _ -> Util.Rng.bool rng) in
    checkb "switch == functional" (G.eval_functional modes inputs) (G.simulate modes inputs)
  done

let test_gnor_reconfiguration () =
  (* The same physical gate, reprogrammed, computes a different function. *)
  let nl = Circuit.Netlist.create () in
  let clk = Circuit.Netlist.add_net nl "clk" in
  let a = Circuit.Netlist.add_net nl "a" in
  let g = G.build nl ~name:"g" ~clock:clk ~inputs:[| a |] in
  let run modes va =
    G.configure nl g modes;
    let sim = Circuit.Sim.create nl in
    Circuit.Sim.set_input sim a va;
    Circuit.Sim.set_input sim clk false;
    Circuit.Sim.phase sim;
    Circuit.Sim.set_input sim clk true;
    Circuit.Sim.phase sim;
    Circuit.Sim.bool_of_net sim (G.output g)
  in
  checkb "as NOT" true (run [| G.Pass |] true = Some false);
  checkb "as BUF(¬)" true (run [| G.Invert |] true = Some true);
  checkb "as const 1" true (run [| G.Drop |] true = Some true)

(* --- Plane ------------------------------------------------------------------ *)

let test_plane_eval_rows () =
  let p = Plane.create ~rows:2 ~cols:2 in
  Plane.configure_row p 0 [| G.Pass; G.Drop |];
  Plane.configure_row p 1 [| G.Invert; G.Pass |];
  let out = Plane.eval p [| false; false |] in
  checkb "row0 = NOR(a)" true out.(0);
  checkb "row1 = NOR(a', b)" false out.(1)

let test_plane_counts () =
  let p = Plane.create ~rows:3 ~cols:4 in
  checki "crosspoints" 12 (Plane.crosspoint_count p);
  checki "none used" 0 (Plane.used_crosspoints p);
  Plane.set_mode p ~row:1 ~col:2 G.Pass;
  Plane.set_mode p ~row:2 ~col:0 G.Invert;
  checki "two used" 2 (Plane.used_crosspoints p)

let test_plane_copy_independent () =
  let p = Plane.create ~rows:1 ~cols:1 in
  let q = Plane.copy p in
  Plane.set_mode q ~row:0 ~col:0 G.Pass;
  checkb "original untouched" true (Plane.mode p ~row:0 ~col:0 = G.Drop);
  checkb "not equal anymore" false (Plane.equal p q)

let test_plane_hw_matches_functional () =
  let rng = Util.Rng.create 909 in
  let p = Plane.create ~rows:3 ~cols:3 in
  Plane.iter
    (fun r c _ ->
      let m = match Util.Rng.int rng 3 with 0 -> G.Pass | 1 -> G.Invert | _ -> G.Drop in
      Plane.set_mode p ~row:r ~col:c m)
    p;
  let hw = Plane.build_hw p in
  for m = 0 to 7 do
    let inputs = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
    Alcotest.check (Alcotest.array Alcotest.bool)
      (Printf.sprintf "pattern %d" m)
      (Plane.eval p inputs) (Plane.simulate_hw hw inputs)
  done

let test_plane_bounds () =
  let p = Plane.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "row out of range" (Invalid_argument "Plane: out of range")
    (fun () -> ignore (Plane.mode p ~row:2 ~col:0))

(* --- PLA mapping ----------------------------------------------------------------- *)

let cover_of_exprs n_in exprs = Expr.to_cover_multi ~n_in exprs

let test_pla_maps_sop () =
  let f = cover_of_exprs 3 [ Expr.(v 0 && v 1 || (not_ (v 2) && v 0)) ] in
  let pla = Pla.of_cover f in
  checkb "implements cover" true (Pla.verify_against pla f)

let test_pla_eval_random () =
  let rng = Util.Rng.create 111 in
  for _ = 1 to 25 do
    let n_in = 2 + Util.Rng.int rng 5 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 10) ~dc_bias:0.4 in
    let pla = Pla.of_cover f in
    checkb "verify_against" true (Pla.verify_against pla f)
  done

let test_pla_single_column_per_input () =
  let f = cover_of_exprs 4 [ Expr.(v 0 && not_ (v 1) && v 2 && not_ (v 3)) ] in
  let pla = Pla.of_cover f in
  checki "AND plane has n_in columns" 4 (Plane.cols (Pla.and_plane pla));
  checki "one product row" 1 (Plane.rows (Pla.and_plane pla))

let test_pla_of_minimized_smaller () =
  let rng = Util.Rng.create 222 in
  let f = Cover.random rng ~n_in:5 ~n_out:2 ~n_cubes:20 ~dc_bias:0.4 in
  let raw = Pla.of_cover f in
  let minimized = Pla.of_minimized f in
  checkb "minimized PLA no larger" true (Pla.num_products minimized <= Pla.num_products raw);
  checkb "still correct" true (Pla.verify_against minimized f)

let test_pla_inverted_outputs () =
  (* Map the complement cover with inverted_outputs: the PLA must realize
     the original function. *)
  let f = cover_of_exprs 3 [ Expr.(v 0 && v 1 && v 2) ] in
  let neg = Cover.complement f in
  let pla = Pla.of_cover ~inverted_outputs:[| true |] neg in
  checkb "negative-phase mapping" true (Pla.verify_against pla f)

let test_pla_constant_outputs () =
  let f = cover_of_exprs 2 [ Expr.Const false; Expr.Const true ] in
  let pla = Pla.of_cover f in
  checkb "constants" true (Pla.verify_against pla f)

let test_pla_eval_products () =
  let f = cover_of_exprs 2 [ Expr.(v 0 && v 1) ] in
  let pla = Pla.of_cover f in
  let prods = Pla.eval_products pla [| true; true |] in
  checkb "product fires" true prods.(0);
  let prods0 = Pla.eval_products pla [| true; false |] in
  checkb "product silent" false prods0.(0)

let test_pla_hw_matches_functional () =
  let rng = Util.Rng.create 333 in
  for _ = 1 to 5 do
    let n_in = 2 + Util.Rng.int rng 3 in
    let n_out = 1 + Util.Rng.int rng 2 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 6) ~dc_bias:0.4 in
    let pla = Pla.of_minimized f in
    let hw = Pla.build_hw pla in
    for m = 0 to (1 lsl n_in) - 1 do
      let inputs = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
      Alcotest.check (Alcotest.array Alcotest.bool) "hw == functional" (Pla.eval pla inputs)
        (Pla.simulate_hw hw inputs)
    done
  done

let test_pla_of_planes_roundtrip () =
  let f = cover_of_exprs 3 [ Expr.(v 0 || (v 1 && v 2)) ] in
  let pla = Pla.of_cover f in
  let rebuilt =
    Pla.of_planes ~n_in:3 ~n_out:1 ~and_plane:(Pla.and_plane pla) ~or_plane:(Pla.or_plane pla)
      ~inverted_outputs:[| not (Pla.output_inverted pla 0) |]
  in
  checkb "of_planes preserves behaviour" true (Pla.verify_against rebuilt f)

(* --- programming protocol (Fig. 3/4) ----------------------------------------- *)

let test_program_roundtrip () =
  let rng = Util.Rng.create 444 in
  let plane = Plane.create ~rows:4 ~cols:5 in
  Plane.iter
    (fun r c _ ->
      let m = match Util.Rng.int rng 3 with 0 -> G.Pass | 1 -> G.Invert | _ -> G.Drop in
      Plane.set_mode plane ~row:r ~col:c m)
    plane;
  let prog = Cnfet.Program.create ~rows:4 ~cols:5 () in
  Cnfet.Program.program_plane prog plane;
  checkb "readback matches" true (Cnfet.Program.verify prog plane);
  checki "one step per crosspoint" 20 (Cnfet.Program.steps prog)

let test_program_initial_state_off () =
  let prog = Cnfet.Program.create ~rows:2 ~cols:2 () in
  let plane = Cnfet.Program.readback prog in
  Plane.iter (fun _ _ m -> checkb "starts dropped" true (m = G.Drop)) plane

let test_program_single_write () =
  let prog = Cnfet.Program.create ~rows:3 ~cols:3 () in
  Cnfet.Program.write_mode prog ~row:1 ~col:2 G.Pass;
  let plane = Cnfet.Program.readback prog in
  checkb "written cell" true (Plane.mode plane ~row:1 ~col:2 = G.Pass);
  checkb "neighbour untouched" true (Plane.mode plane ~row:1 ~col:1 = G.Drop)

let test_program_disturb () =
  (* With heavy disturb, repeatedly writing one cell drags its row/column
     half-selected neighbours toward the written voltage. *)
  let p = A.default in
  let prog = Cnfet.Program.create ~disturb:0.2 ~rows:2 ~cols:2 () in
  for _ = 1 to 20 do
    Cnfet.Program.write prog ~row:0 ~col:0 (A.v_plus p)
  done;
  let v_half = Cnfet.Program.stored_voltage prog ~row:0 ~col:1 in
  checkb "half-selected cell disturbed" true (v_half > A.v_zero p +. 0.1);
  let v_unselected = Cnfet.Program.stored_voltage prog ~row:1 ~col:1 in
  checkf "unselected cell keeps V0" (A.v_zero p) v_unselected

let test_program_retention () =
  let prog = Cnfet.Program.create ~rows:1 ~cols:1 () in
  Cnfet.Program.write_mode prog ~row:0 ~col:0 G.Pass;
  Cnfet.Program.age prog ~seconds:1.0;
  let plane = Cnfet.Program.readback prog in
  checkb "state survives 1 s" true (Plane.mode plane ~row:0 ~col:0 = G.Pass);
  Cnfet.Program.age prog ~seconds:1e6;
  let plane' = Cnfet.Program.readback prog in
  checkb "charge eventually decays to off" true (Plane.mode plane' ~row:0 ~col:0 = G.Drop)

(* --- Program_hw (physical select network) ----------------------------------------- *)

let test_program_hw_selected_cell_full_level () =
  let hw = Cnfet.Program_hw.build ~rows:3 ~cols:3 () in
  Cnfet.Program_hw.write_mode hw ~row:1 ~col:1 G.Pass;
  let v = Cnfet.Program_hw.stored_voltage hw ~row:1 ~col:1 in
  checkb "boosted write reaches full VDD" true (v > 1.15)

let test_program_hw_half_select_isolation () =
  let hw = Cnfet.Program_hw.build ~rows:3 ~cols:3 () in
  Cnfet.Program_hw.write_mode hw ~row:1 ~col:1 G.Pass;
  let v0 = Device.Ambipolar.v_zero Device.Ambipolar.default in
  List.iter
    (fun (r, c) ->
      let v = Cnfet.Program_hw.stored_voltage hw ~row:r ~col:c in
      checkb
        (Printf.sprintf "cell (%d,%d) undisturbed" r c)
        true
        (Float.abs (v -. v0) < 0.05))
    [ (1, 0); (0, 1); (2, 2); (0, 0) ]

let test_program_hw_plane_roundtrip () =
  let rng = Util.Rng.create 21 in
  let plane = Plane.create ~rows:3 ~cols:4 in
  Plane.iter
    (fun r c _ ->
      let m = match Util.Rng.int rng 3 with 0 -> G.Pass | 1 -> G.Invert | _ -> G.Drop in
      Plane.set_mode plane ~row:r ~col:c m)
    plane;
  let hw = Cnfet.Program_hw.build ~rows:3 ~cols:4 () in
  Cnfet.Program_hw.program_plane hw plane;
  checkb "physical program + readback" true (Cnfet.Program_hw.verify hw plane);
  checki "two access devices per crosspoint" 24 (Cnfet.Program_hw.device_count hw)

let test_program_hw_rewrite () =
  (* Reprogramming a cell in a used array must overwrite the old charge. *)
  let hw = Cnfet.Program_hw.build ~rows:2 ~cols:2 () in
  Cnfet.Program_hw.write_mode hw ~row:0 ~col:0 G.Pass;
  Cnfet.Program_hw.write_mode hw ~row:0 ~col:0 G.Invert;
  let plane = Cnfet.Program_hw.readback hw in
  checkb "rewritten to invert" true (Plane.mode plane ~row:0 ~col:0 = G.Invert)

let test_program_hw_disturb_and_scrub () =
  (* A large charge disturbance flips the stored mode; rewriting the cell
     restores it — the retention-fault model the chaos scrubber relies
     on. *)
  let plane = Plane.create ~rows:2 ~cols:2 in
  Plane.configure_row plane 0 [| G.Pass; G.Drop |];
  Plane.configure_row plane 1 [| G.Drop; G.Invert |];
  let hw = Cnfet.Program_hw.build ~rows:2 ~cols:2 () in
  Cnfet.Program_hw.program_plane hw plane;
  checkb "programmed clean" true (Cnfet.Program_hw.verify hw plane);
  let v0 = Cnfet.Program_hw.stored_voltage hw ~row:0 ~col:0 in
  Cnfet.Program_hw.disturb hw ~row:0 ~col:0 (-2.5);
  checkb "charge moved" true
    (Float.abs (Cnfet.Program_hw.stored_voltage hw ~row:0 ~col:0 -. v0) > 1.0);
  checkb "readback detects the flip" false (Cnfet.Program_hw.verify hw plane);
  Cnfet.Program_hw.write_mode hw ~row:0 ~col:0 (Plane.mode plane ~row:0 ~col:0);
  checkb "scrub restores" true (Cnfet.Program_hw.verify hw plane)

let test_program_hw_matches_charge_model () =
  (* The physical network and the charge-level protocol agree on the final
     configuration. *)
  let plane = Plane.create ~rows:2 ~cols:3 in
  Plane.configure_row plane 0 [| G.Pass; G.Drop; G.Invert |];
  Plane.configure_row plane 1 [| G.Invert; G.Pass; G.Drop |];
  let hw = Cnfet.Program_hw.build ~rows:2 ~cols:3 () in
  Cnfet.Program_hw.program_plane hw plane;
  let prog = Cnfet.Program.create ~rows:2 ~cols:3 () in
  Cnfet.Program.program_plane prog plane;
  checkb "both readbacks equal" true
    (Plane.equal (Cnfet.Program_hw.readback hw) (Cnfet.Program.readback prog))

(* --- Crossbar ------------------------------------------------------------------ *)

let test_crossbar_copy_equal () =
  let x = Cnfet.Crossbar.create ~rows:3 ~cols:4 in
  Cnfet.Crossbar.connect x ~row:0 ~col:2;
  Cnfet.Crossbar.connect x ~row:2 ~col:1;
  let snap = Cnfet.Crossbar.copy x in
  checkb "copy equals original" true (Cnfet.Crossbar.equal x snap);
  Cnfet.Crossbar.connect x ~row:1 ~col:3;
  checkb "copy is independent" false (Cnfet.Crossbar.equal x snap);
  checkb "snapshot unchanged" false (Cnfet.Crossbar.connected snap ~row:1 ~col:3);
  Cnfet.Crossbar.disconnect x ~row:1 ~col:3;
  checkb "restored state equal again" true (Cnfet.Crossbar.equal x snap);
  checkb "shape mismatch unequal" false
    (Cnfet.Crossbar.equal x (Cnfet.Crossbar.create ~rows:3 ~cols:3))

let test_crossbar_connectivity () =
  let x = Cnfet.Crossbar.create ~rows:3 ~cols:3 in
  checkb "initially open" false (Cnfet.Crossbar.route_point_to_point x ~from_row:0 ~to_col:0);
  Cnfet.Crossbar.connect x ~row:0 ~col:1;
  checkb "direct connection" true (Cnfet.Crossbar.route_point_to_point x ~from_row:0 ~to_col:1);
  Cnfet.Crossbar.connect x ~row:2 ~col:1;
  checkb "transitive through column" true
    (Cnfet.Crossbar.route_point_to_point x ~from_row:2 ~to_col:1);
  Cnfet.Crossbar.disconnect x ~row:0 ~col:1;
  checkb "disconnect works" false (Cnfet.Crossbar.route_point_to_point x ~from_row:0 ~to_col:1)

let test_crossbar_polarity () =
  let x = Cnfet.Crossbar.create ~rows:2 ~cols:2 in
  Cnfet.Crossbar.connect x ~row:0 ~col:0;
  checkb "connected is n-type" true
    (Cnfet.Crossbar.crosspoint_polarity x ~row:0 ~col:0 = A.N_type);
  checkb "open is off" true (Cnfet.Crossbar.crosspoint_polarity x ~row:1 ~col:1 = A.Off_state)

let test_crossbar_components () =
  let x = Cnfet.Crossbar.create ~rows:2 ~cols:2 in
  checki "all isolated" 4 (List.length (Cnfet.Crossbar.components x));
  Cnfet.Crossbar.connect x ~row:0 ~col:0;
  Cnfet.Crossbar.connect x ~row:1 ~col:0;
  (* {R0, R1, C0} fused; C1 alone. *)
  checki "two groups" 2 (List.length (Cnfet.Crossbar.components x))

let test_crossbar_resolve () =
  let x = Cnfet.Crossbar.create ~rows:2 ~cols:2 in
  Cnfet.Crossbar.connect x ~row:0 ~col:0;
  let v = Cnfet.Crossbar.resolve x ~driven:[ (Cnfet.Crossbar.Row 0, true) ] (Cnfet.Crossbar.Col 0) in
  checkb "signal propagates" true (v = Cnfet.Crossbar.Driven true);
  let z = Cnfet.Crossbar.resolve x ~driven:[ (Cnfet.Crossbar.Row 0, true) ] (Cnfet.Crossbar.Col 1) in
  checkb "isolated floats" true (z = Cnfet.Crossbar.Floating);
  Cnfet.Crossbar.connect x ~row:1 ~col:0;
  let c =
    Cnfet.Crossbar.resolve x
      ~driven:[ (Cnfet.Crossbar.Row 0, true); (Cnfet.Crossbar.Row 1, false) ]
      (Cnfet.Crossbar.Col 0)
  in
  checkb "conflict detected" true (c = Cnfet.Crossbar.Conflict)

let test_crossbar_area () =
  let x = Cnfet.Crossbar.create ~rows:4 ~cols:5 in
  checki "area = cell * crosspoints" (60 * 20) (Cnfet.Crossbar.area Device.Tech.cnfet x)

let test_crossbar_hw_matches_resolve () =
  let rng = Util.Rng.create 66 in
  for _ = 1 to 10 do
    let rows = 2 + Util.Rng.int rng 3 and cols = 2 + Util.Rng.int rng 3 in
    let x = Cnfet.Crossbar.create ~rows ~cols in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        if Util.Rng.bernoulli rng 0.3 then Cnfet.Crossbar.connect x ~row:r ~col:c
      done
    done;
    let hw = Cnfet.Crossbar.build_hw x in
    let driven = [ (0, Util.Rng.bool rng) ] in
    let _, cols_hw = Cnfet.Crossbar.simulate_hw hw ~driven in
    for c = 0 to cols - 1 do
      let want =
        match
          Cnfet.Crossbar.resolve x
            ~driven:(List.map (fun (r, v) -> (Cnfet.Crossbar.Row r, v)) driven)
            (Cnfet.Crossbar.Col c)
        with
        | Cnfet.Crossbar.Driven b -> Some b
        | Cnfet.Crossbar.Conflict | Cnfet.Crossbar.Floating -> None
      in
      checkb "hw column matches resolve" true (cols_hw.(c) = want)
    done
  done

(* Random NOR networks: generator + mapping property. *)
let random_network seed =
  let rng = Util.Rng.create seed in
  let n_pi = 2 + Util.Rng.int rng 4 in
  let n_nodes = 1 + Util.Rng.int rng 10 in
  let nodes =
    Array.init n_nodes (fun k ->
        let n_fanin = 1 + Util.Rng.int rng 3 in
        List.init n_fanin (fun _ ->
            let s =
              if k = 0 || Util.Rng.bool rng then Cnfet.Cascade.Pi (Util.Rng.int rng n_pi)
              else Cnfet.Cascade.Node (Util.Rng.int rng k)
            in
            (s, Util.Rng.bool rng)))
  in
  (* Drop duplicate-signal fanins with conflicting flags (unmappable). *)
  let nodes =
    Array.map
      (fun fanins ->
        List.fold_left
          (fun acc (s, inv) ->
            if List.exists (fun (s', _) -> s = s') acc then acc else (s, inv) :: acc)
          [] fanins)
      nodes
  in
  let outputs =
    Array.init
      (1 + Util.Rng.int rng 3)
      (fun _ -> Cnfet.Cascade.Node (Util.Rng.int rng n_nodes))
  in
  { Cnfet.Cascade.n_pi; nodes; outputs }

let prop_cascade_mapping_preserves =
  QCheck.Test.make ~name:"cascade mapping preserves any NOR network" ~count:100
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let net = random_network seed in
      Cnfet.Cascade.verify_against_network (Cnfet.Cascade.of_network net) net)

(* qcheck: mapping any random cover onto a PLA preserves the function. *)
let prop_pla_mapping_preserves =
  let gen =
    QCheck.Gen.(
      let* n_in = int_range 1 6 in
      let* n_out = int_range 1 3 in
      let* n_cubes = int_range 0 10 in
      let* seed = int_bound 1_000_000 in
      return (Logic.Cover.random (Util.Rng.create seed) ~n_in ~n_out ~n_cubes ~dc_bias:0.4))
  in
  QCheck.Test.make ~name:"PLA mapping preserves any cover" ~count:100
    (QCheck.make ~print:Logic.Cover.to_string gen) (fun f ->
      Pla.verify_against (Pla.of_cover f) f)

let prop_wpla_preserves =
  let gen =
    QCheck.Gen.(
      let* n_in = int_range 1 5 in
      let* n_out = int_range 1 3 in
      let* n_cubes = int_range 0 8 in
      let* seed = int_bound 1_000_000 in
      return (Logic.Cover.random (Util.Rng.create seed) ~n_in ~n_out ~n_cubes ~dc_bias:0.4))
  in
  QCheck.Test.make ~name:"WPLA synthesis preserves any cover" ~count:50
    (QCheck.make ~print:Logic.Cover.to_string gen) (fun f ->
      Cnfet.Wpla.verify_against (Cnfet.Wpla.of_function f) f)

(* --- Area model (Table 1) --------------------------------------------------------- *)

let table1_profiles =
  [
    ({ Cnfet.Area.n_in = 9; n_out = 1; n_products = 46 }, 34960, 87400, 27600);
    ({ Cnfet.Area.n_in = 10; n_out = 12; n_products = 25 }, 32000, 80000, 33000);
    ({ Cnfet.Area.n_in = 17; n_out = 16; n_products = 52 }, 104000, 260000, 102960);
  ]

let test_area_table1_exact () =
  List.iter
    (fun (p, flash, eeprom, cnfet) ->
      checki "flash" flash (Cnfet.Area.pla_area Device.Tech.flash p);
      checki "eeprom" eeprom (Cnfet.Area.pla_area Device.Tech.eeprom p);
      checki "cnfet" cnfet (Cnfet.Area.pla_area Device.Tech.cnfet p))
    table1_profiles

let test_area_wire_reduction () =
  let p = { Cnfet.Area.n_in = 9; n_out = 1; n_products = 46 } in
  checkf "factor 2 on input wires" 2.0 (Cnfet.Area.wire_reduction_factor p);
  checki "classical wires" 19 (Cnfet.Area.total_wires Device.Tech.flash p);
  checki "gnor wires" 10 (Cnfet.Area.total_wires Device.Tech.cnfet p)

let test_area_crossover () =
  (* CNFET beats Flash exactly when n_in > n_out. *)
  (match Cnfet.Area.crossover_inputs Device.Tech.flash ~n_out:1 with
  | Some n -> checki "flash crossover at n_out+1" 2 n
  | None -> Alcotest.fail "expected crossover");
  (match Cnfet.Area.crossover_inputs Device.Tech.flash ~n_out:12 with
  | Some n -> checki "flash crossover scales" 13 n
  | None -> Alcotest.fail "expected crossover");
  (* CNFET always beats EEPROM. *)
  match Cnfet.Area.crossover_inputs Device.Tech.eeprom ~n_out:5 with
  | Some n -> checki "eeprom from 1 input" 1 n
  | None -> Alcotest.fail "expected crossover"

let test_area_profile_of_pla () =
  let f = cover_of_exprs 3 [ Expr.(v 0 || v 1 || v 2) ] in
  let pla = Pla.of_cover f in
  let p = Cnfet.Area.profile_of_pla pla in
  checki "inputs" 3 p.Cnfet.Area.n_in;
  checki "outputs" 1 p.Cnfet.Area.n_out;
  checki "products" 3 p.Cnfet.Area.n_products

let test_area_saving_sign () =
  (* max46-shaped PLA saves ~21% vs Flash; apla-shaped loses ~3%. *)
  let max46 = { Cnfet.Area.n_in = 9; n_out = 1; n_products = 46 } in
  let apla = { Cnfet.Area.n_in = 10; n_out = 12; n_products = 25 } in
  let s_max46 = Cnfet.Area.cnfet_saving_vs Device.Tech.flash max46 in
  let s_apla = Cnfet.Area.cnfet_saving_vs Device.Tech.flash apla in
  checkb "max46 saves ~21%" true (s_max46 > 0.20 && s_max46 < 0.22);
  checkb "apla overhead ~3%" true (s_apla < 0.0 && s_apla > -0.04)

(* --- Whirlpool PLA ------------------------------------------------------------------ *)

let test_wpla_correct_random () =
  let rng = Util.Rng.create 555 in
  for _ = 1 to 15 do
    let n_in = 2 + Util.Rng.int rng 4 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let w = Cnfet.Wpla.of_function f in
    checkb "wpla implements f" true (Cnfet.Wpla.verify_against w f);
    checki "four planes" 4 (Cnfet.Wpla.num_planes w)
  done

let test_wpla_mixed_polarity_split () =
  (* Output 0 cheap negative (OR), output 1 cheap positive (AND): both
     pairs are used. *)
  let f = cover_of_exprs 4 [ Expr.(Or [ v 0; v 1; v 2; v 3 ]); Expr.(v 0 && v 1) ] in
  let w = Cnfet.Wpla.of_function f in
  checkb "has positive pair" true (Cnfet.Wpla.positive_pla w <> None);
  checkb "has negative pair" true (Cnfet.Wpla.negative_pla w <> None);
  checkb "correct" true (Cnfet.Wpla.verify_against w f);
  checkb "beats two-level on products" true
    (Cnfet.Wpla.products w <= Cnfet.Wpla.products_two_level w + 1)

let test_wpla_all_positive () =
  let f = cover_of_exprs 2 [ Expr.(v 0 && v 1) ] in
  let w = Cnfet.Wpla.of_function f in
  checkb "no negative pair needed" true (Cnfet.Wpla.negative_pla w = None);
  checkb "correct" true (Cnfet.Wpla.verify_against w f)

let test_wpla_area_positive () =
  let rng = Util.Rng.create 666 in
  let f = Cover.random rng ~n_in:4 ~n_out:2 ~n_cubes:6 ~dc_bias:0.4 in
  let w = Cnfet.Wpla.of_function f in
  checkb "area positive" true (Cnfet.Wpla.area Device.Tech.cnfet w > 0)

(* --- Bitstream ----------------------------------------------------------------------- *)

let test_bitstream_roundtrip_random () =
  let rng = Util.Rng.create 123 in
  for _ = 1 to 10 do
    let n_in = 2 + Util.Rng.int rng 4 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let pla = Pla.of_cover f in
    let bytes = Cnfet.Bitstream.to_bytes (Cnfet.Bitstream.of_pla pla) in
    let inv = Array.init n_out (fun o -> not (Pla.output_inverted pla o)) in
    let pla2 =
      Cnfet.Bitstream.to_pla ~n_in ~n_out ~inverted_outputs:inv
        (Cnfet.Bitstream.of_bytes bytes)
    in
    checkb "bitstream roundtrip preserves function" true (Pla.verify_against pla2 f)
  done

let test_bitstream_compact () =
  (* 2 bits per crosspoint plus a small header. *)
  let pla = Pla.of_minimized (Mcnc.Generators.comparator ~bits:2) in
  let bs = Cnfet.Bitstream.of_pla pla in
  let crosspoints = Pla.crosspoint_count pla in
  checkb "about 2 bits per crosspoint" true
    (Cnfet.Bitstream.size_bytes bs <= (crosspoints / 4) + 20);
  checki "program steps = crosspoints" crosspoints (Cnfet.Bitstream.program_steps bs)

let test_bitstream_corruption_detected () =
  let pla = Pla.of_minimized (Mcnc.Generators.mux ~select_bits:2) in
  let bytes = Cnfet.Bitstream.to_bytes (Cnfet.Bitstream.of_pla pla) in
  (* Flip one payload bit. *)
  let corrupted = Bytes.of_string bytes in
  Bytes.set corrupted 9 (Char.chr (Char.code (Bytes.get corrupted 9) lxor 1));
  checkb "checksum catches bit flip" true
    (try
       ignore (Cnfet.Bitstream.of_bytes (Bytes.to_string corrupted));
       false
     with Invalid_argument _ -> true);
  checkb "bad magic rejected" true
    (try
       ignore (Cnfet.Bitstream.of_bytes ("XXXX" ^ String.sub bytes 4 (String.length bytes - 4)));
       false
     with Invalid_argument _ -> true);
  checkb "truncation rejected" true
    (try
       ignore (Cnfet.Bitstream.of_bytes (String.sub bytes 0 (String.length bytes - 3)));
       false
     with Invalid_argument _ -> true)

let test_bitstream_file_io () =
  let pla = Pla.of_minimized (Mcnc.Generators.gray ~bits:3) in
  let bs = Cnfet.Bitstream.of_pla pla in
  let path = Filename.temp_file "cnfet" ".bit" in
  Cnfet.Bitstream.write_file path bs;
  let bs2 = Cnfet.Bitstream.read_file path in
  Sys.remove path;
  checkb "file roundtrip equal planes" true
    (List.for_all2 Plane.equal (Cnfet.Bitstream.to_planes bs) (Cnfet.Bitstream.to_planes bs2))

(* --- Folding ------------------------------------------------------------------------ *)

let test_folding_disjoint_columns_fold () =
  (* Two products on disjoint input pairs: columns can share. *)
  let f = cover_of_exprs 4 [ Expr.(v 0 && v 1 || (v 2 && v 3)) ] in
  let plane = Pla.and_plane (Pla.of_cover f) in
  let r = Cnfet.Folding.fold_plane plane in
  checkb "two folds" true (List.length r.Cnfet.Folding.folds = 2);
  checki "physical columns halved" 2 r.Cnfet.Folding.physical_columns;
  checkb "valid" true (Cnfet.Folding.validate plane r)

let test_folding_dense_plane_unfoldable () =
  (* Parity uses every input in every product: nothing folds. *)
  let plane = Pla.and_plane (Pla.of_minimized (Mcnc.Generators.xor_n 4)) in
  let r = Cnfet.Folding.fold_plane plane in
  checki "no folds" 0 (List.length r.Cnfet.Folding.folds);
  checkb "valid" true (Cnfet.Folding.validate plane r)

let test_folding_validates_row_separation () =
  let rng = Util.Rng.create 41 in
  for _ = 1 to 15 do
    let f = Cover.random rng ~n_in:(4 + Util.Rng.int rng 3) ~n_out:2
        ~n_cubes:(3 + Util.Rng.int rng 8) ~dc_bias:0.5
    in
    let pla = Pla.of_cover f in
    List.iter
      (fun plane ->
        let r = Cnfet.Folding.fold_plane plane in
        checkb "fold result validates" true (Cnfet.Folding.validate plane r);
        checkb "column count consistent" true
          (r.Cnfet.Folding.physical_columns
          = Cnfet.Plane.cols plane - List.length r.Cnfet.Folding.folds))
      [ Pla.and_plane pla; Pla.or_plane pla ]
  done

let test_folding_validate_rejects_bogus () =
  let f = cover_of_exprs 4 [ Expr.(v 0 && v 1 || (v 2 && v 3)) ] in
  let plane = Pla.and_plane (Pla.of_cover f) in
  let r = Cnfet.Folding.fold_plane plane in
  (* Corrupt the row order: put a bottom user above a top user. *)
  let bogus = { r with Cnfet.Folding.row_order = Array.of_list (List.rev (Array.to_list r.Cnfet.Folding.row_order)) } in
  checkb "reversed order rejected" false (Cnfet.Folding.validate plane bogus)

let test_folding_column_users () =
  let plane = Plane.create ~rows:3 ~cols:3 in
  (* col 0 used by rows 0 and 2 (Pass/Invert both count), col 1 by row 1,
     col 2 by nobody. *)
  Plane.set_mode plane ~row:0 ~col:0 G.Pass;
  Plane.set_mode plane ~row:2 ~col:0 G.Invert;
  Plane.set_mode plane ~row:1 ~col:1 G.Pass;
  Alcotest.(check (list int)) "col 0 users" [ 0; 2 ] (Cnfet.Folding.column_users plane 0);
  Alcotest.(check (list int)) "col 1 users" [ 1 ] (Cnfet.Folding.column_users plane 1);
  Alcotest.(check (list int)) "col 2 users" [] (Cnfet.Folding.column_users plane 2)

let test_folding_row_order_is_permutation () =
  let rng = Util.Rng.create 77 in
  for _ = 1 to 10 do
    let f =
      Cover.random rng ~n_in:(3 + Util.Rng.int rng 4) ~n_out:1 ~n_cubes:(2 + Util.Rng.int rng 6)
        ~dc_bias:0.6
    in
    let plane = Pla.and_plane (Pla.of_cover f) in
    let r = Cnfet.Folding.fold_plane plane in
    let order = r.Cnfet.Folding.row_order in
    checki "permutation length" (Plane.rows plane) (Array.length order);
    let seen = Array.make (Plane.rows plane) false in
    Array.iter (fun row -> seen.(row) <- true) order;
    checkb "every row appears exactly once" true (Array.for_all Fun.id seen);
    (* Folded columns are genuinely disjoint in the plane. *)
    List.iter
      (fun { Cnfet.Folding.top; bottom } ->
        let users c = Cnfet.Folding.column_users plane c in
        checkb "fold pairs disjoint columns" true
          (List.for_all (fun r0 -> not (List.mem r0 (users bottom))) (users top)))
      r.Cnfet.Folding.folds
  done

let test_folding_area_never_grows () =
  List.iter
    (fun (_, f) ->
      let pla = Pla.of_minimized f in
      let base = Cnfet.Area.pla_area Device.Tech.cnfet (Cnfet.Area.profile_of_pla pla) in
      checkb "folded ≤ flat" true (Cnfet.Folding.folded_pla_area Device.Tech.cnfet pla <= base))
    Mcnc.Generators.all

(* --- Pla_timing -------------------------------------------------------------------- *)

let max46_profile = { Cnfet.Area.n_in = 9; n_out = 1; n_products = 46 }

let test_pla_timing_positive () =
  List.iter
    (fun (_, r) ->
      checkb "delays positive" true
        (r.Cnfet.Pla_timing.input_delay > 0.0
        && r.Cnfet.Pla_timing.and_plane_delay > 0.0
        && r.Cnfet.Pla_timing.or_plane_delay > 0.0
        && r.Cnfet.Pla_timing.total_delay > 0.0);
      checkb "energy positive" true (r.Cnfet.Pla_timing.energy_per_eval > 0.0);
      checkb "frequency consistent" true
        (Float.abs
           ((1.0 /. (2.0 *. r.Cnfet.Pla_timing.total_delay))
           -. r.Cnfet.Pla_timing.max_frequency)
        < 1.0))
    (Cnfet.Pla_timing.compare_table1 max46_profile)

let test_pla_timing_shorter_rows_faster () =
  (* The CNFET AND plane has half the columns of a classical plane: its
     word-line (row) discharge must be faster than EEPROM's (same pitch
     class as its own cell, far fewer cells than 2x columns). *)
  let cnfet = Cnfet.Pla_timing.evaluate Device.Tech.cnfet max46_profile in
  let eeprom = Cnfet.Pla_timing.evaluate Device.Tech.eeprom max46_profile in
  checkb "CNFET AND-plane faster than EEPROM" true
    (cnfet.Cnfet.Pla_timing.and_plane_delay < eeprom.Cnfet.Pla_timing.and_plane_delay);
  checkb "CNFET lowest energy" true
    (let flash = Cnfet.Pla_timing.evaluate Device.Tech.flash max46_profile in
     cnfet.Cnfet.Pla_timing.energy_per_eval < flash.Cnfet.Pla_timing.energy_per_eval
     && cnfet.Cnfet.Pla_timing.energy_per_eval < eeprom.Cnfet.Pla_timing.energy_per_eval)

let test_pla_timing_monotone_in_products () =
  let d products =
    (Cnfet.Pla_timing.evaluate Device.Tech.cnfet
       { Cnfet.Area.n_in = 8; n_out = 2; n_products = products })
      .Cnfet.Pla_timing.total_delay
  in
  checkb "more products, more delay" true (d 64 > d 16 && d 16 > d 4)

let test_pla_timing_activity_scales_energy () =
  let e activity =
    (Cnfet.Pla_timing.evaluate ~activity Device.Tech.cnfet max46_profile)
      .Cnfet.Pla_timing.energy_per_eval
  in
  checkf "activity linear" (2.0 *. e 0.25) (e 0.5)

(* --- Cascade ------------------------------------------------------------------------ *)

let test_cascade_network_eval () =
  (* Single NOR node over two PIs. *)
  let net =
    {
      Cnfet.Cascade.n_pi = 2;
      nodes = [| [ (Cnfet.Cascade.Pi 0, false); (Cnfet.Cascade.Pi 1, false) ] |];
      outputs = [| Cnfet.Cascade.Node 0 |];
    }
  in
  Cnfet.Cascade.validate_network net;
  let e a b = (Cnfet.Cascade.eval_network net [| a; b |]).(0) in
  checkb "NOR 00" true (e false false);
  checkb "NOR 10" false (e true false);
  checkb "NOR 11" false (e true true)

let test_cascade_rejects_forward_reference () =
  let bad =
    {
      Cnfet.Cascade.n_pi = 1;
      nodes = [| [ (Cnfet.Cascade.Node 0, false) ] |];
      outputs = [| Cnfet.Cascade.Node 0 |];
    }
  in
  checkb "self reference rejected" true
    (try
       Cnfet.Cascade.validate_network bad;
       false
     with Invalid_argument _ -> true)

let test_cascade_xor_tree () =
  List.iter
    (fun n ->
      let net = Cnfet.Cascade.xor_tree ~n in
      let c = Cnfet.Cascade.of_network net in
      checkb
        (Printf.sprintf "xor%d mapped correctly" n)
        true
        (Cnfet.Cascade.verify_against_network c net);
      (* and it really is parity *)
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let pis = Array.init n (fun i -> m land (1 lsl i) <> 0) in
        let want = Array.fold_left (fun a b -> if b then not a else a) false pis in
        if (Cnfet.Cascade.eval c pis).(0) <> want then ok := false
      done;
      checkb (Printf.sprintf "xor%d is parity" n) true !ok)
    [ 2; 3; 5; 8 ]

let test_cascade_beats_two_level_on_parity () =
  let n = 8 in
  let net = Cnfet.Cascade.xor_tree ~n in
  let c = Cnfet.Cascade.of_network net in
  let pla = Pla.of_minimized (Expr.to_cover_multi ~n_in:n [ Expr.parity (List.init n Expr.v) ]) in
  checkb "cascade uses far fewer devices" true
    (3 * Cnfet.Cascade.device_count c < Pla.crosspoint_count pla)

let test_cascade_two_level_embedding () =
  let rng = Util.Rng.create 91 in
  for _ = 1 to 10 do
    let n_in = 2 + Util.Rng.int rng 3 in
    let n_out = 1 + Util.Rng.int rng 2 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 6) ~dc_bias:0.4 in
    let net = Cnfet.Cascade.network_of_cover f in
    let c = Cnfet.Cascade.of_network net in
    checkb "mapping == network" true (Cnfet.Cascade.verify_against_network c net);
    (* and the network == the cover *)
    let ok = ref true in
    for m = 0 to (1 lsl n_in) - 1 do
      let pis = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
      let want = Cover.eval f pis in
      let got = Cnfet.Cascade.eval_network net pis in
      for o = 0 to n_out - 1 do
        if got.(o) <> Util.Bitvec.get want o then ok := false
      done
    done;
    checkb "network == cover" true !ok
  done

let test_cascade_from_factored () =
  (* Auto-synthesis: minimize -> factor -> NOR network -> mapped cascade,
     equivalent to the source at every step. *)
  let cases =
    [ Mcnc.Generators.comparator ~bits:2; Mcnc.Generators.gray ~bits:4; Mcnc.Generators.bcd7seg () ]
  in
  List.iter
    (fun f ->
      let m = Espresso.Minimize.cover f in
      let exprs = Espresso.Factor.factor_multi m in
      let net = Cnfet.Cascade.network_of_factored ~n_in:(Cover.num_inputs m) exprs in
      let c = Cnfet.Cascade.of_network net in
      checkb "cascade == network" true (Cnfet.Cascade.verify_against_network c net);
      let n_in = Cover.num_inputs f in
      let ok = ref true in
      for mm = 0 to (1 lsl n_in) - 1 do
        let pis = Array.init n_in (fun i -> mm land (1 lsl i) <> 0) in
        let want = Cover.eval f pis in
        let got = Cnfet.Cascade.eval c pis in
        for o = 0 to Cover.num_outputs f - 1 do
          if got.(o) <> Util.Bitvec.get want o then ok := false
        done
      done;
      checkb "cascade == original function" true !ok)
    cases

let test_cascade_rejects_conflicting_fanins () =
  (* NOR(x, x') cannot live on one plane row. *)
  let net =
    {
      Cnfet.Cascade.n_pi = 1;
      nodes = [| [ (Cnfet.Cascade.Pi 0, false); (Cnfet.Cascade.Pi 0, true) ] |];
      outputs = [| Cnfet.Cascade.Node 0 |];
    }
  in
  checkb "mapper refuses both polarities" true
    (try
       ignore (Cnfet.Cascade.of_network net);
       false
     with Invalid_argument _ -> true)

let test_cascade_factored_shares_subexpressions () =
  (* Two outputs with a common subexpression share nodes. *)
  let shared = Espresso.Factor.And [ Espresso.Factor.Lit (0, true); Espresso.Factor.Lit (1, true) ] in
  let e0 = Espresso.Factor.Or [ shared; Espresso.Factor.Lit (2, true) ] in
  let e1 = Espresso.Factor.Or [ shared; Espresso.Factor.Lit (3, true) ] in
  let net = Cnfet.Cascade.network_of_factored ~n_in:4 [| e0; e1 |] in
  (* shared AND appears once: expect 1 (AND) + 2 (ORs) + 2 (inverters) = 5 *)
  checki "five nodes with sharing" 5 (Array.length net.Cnfet.Cascade.nodes)

let test_cascade_switch_level () =
  (* The multi-phase domino cascade agrees with the functional model. *)
  let net = Cnfet.Cascade.xor_tree ~n:4 in
  let c = Cnfet.Cascade.of_network net in
  let hw = Cnfet.Cascade.build_hw c in
  for m = 0 to 15 do
    let pis = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    Alcotest.check (Alcotest.array Alcotest.bool)
      (Printf.sprintf "pattern %d" m)
      (Cnfet.Cascade.eval c pis) (Cnfet.Cascade.simulate_hw hw pis)
  done

let test_cascade_switch_level_factored () =
  let f = Espresso.Minimize.cover (Mcnc.Generators.gray ~bits:3) in
  let exprs = Espresso.Factor.factor_multi f in
  let net = Cnfet.Cascade.network_of_factored ~n_in:3 exprs in
  let c = Cnfet.Cascade.of_network net in
  let hw = Cnfet.Cascade.build_hw c in
  for m = 0 to 7 do
    let pis = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
    Alcotest.check (Alcotest.array Alcotest.bool)
      (Printf.sprintf "pattern %d" m)
      (Cnfet.Cascade.eval c pis) (Cnfet.Cascade.simulate_hw hw pis)
  done

(* --- Fsm ------------------------------------------------------------------------- *)

let test_fsm_sequence_detector_trace () =
  let spec = Cnfet.Fsm.sequence_detector ~pattern:[ true; false; true ] in
  let fsm = Cnfet.Fsm.synthesize spec in
  let stim =
    List.map (fun b -> [| b |]) [ true; false; true; false; true; true; false; true ]
  in
  let outs = List.map (fun o -> o.(0)) (Cnfet.Fsm.run fsm stim) in
  (* overlapping matches: ..101, ..0101, and the final ..101 *)
  Alcotest.check (Alcotest.list Alcotest.bool) "101 detections"
    [ false; false; true; false; true; false; false; true ]
    outs

let test_fsm_both_encodings_verify () =
  List.iter
    (fun spec ->
      List.iter
        (fun enc ->
          let fsm = Cnfet.Fsm.synthesize ~encoding:enc spec in
          checkb "random stimulus equivalence" true
            (Cnfet.Fsm.verify_against_spec ~steps:300 fsm spec))
        [ Cnfet.Fsm.Binary; Cnfet.Fsm.One_hot ])
    [
      Cnfet.Fsm.sequence_detector ~pattern:[ true; true; false ];
      Cnfet.Fsm.counter ~modulo:5;
      Cnfet.Fsm.counter ~modulo:8;
    ]

let test_fsm_counter_counts () =
  let spec = Cnfet.Fsm.counter ~modulo:5 in
  let fsm = Cnfet.Fsm.synthesize spec in
  (* 7 enabled ticks from reset: counts 1,2,3,4,0,1,2 visible on outputs
     (Mealy: output reflects the pre-tick state). *)
  let stim = List.init 7 (fun _ -> [| true |]) in
  let outs = Cnfet.Fsm.run fsm stim in
  let as_int o = (if o.(0) then 1 else 0) lor (if o.(1) then 2 else 0) lor if o.(2) then 4 else 0 in
  Alcotest.check (Alcotest.list Alcotest.int) "counts" [ 0; 1; 2; 3; 4; 0; 1 ]
    (List.map as_int outs)

let test_fsm_disabled_counter_holds () =
  let spec = Cnfet.Fsm.counter ~modulo:4 in
  let fsm = Cnfet.Fsm.synthesize spec in
  let regs = ref (Cnfet.Fsm.reset_vector fsm) in
  (* two enabled ticks then three disabled ones *)
  for _ = 1 to 2 do
    let r, _ = Cnfet.Fsm.step fsm ~registers:!regs [| true |] in
    regs := r
  done;
  let frozen = Array.copy !regs in
  for _ = 1 to 3 do
    let r, _ = Cnfet.Fsm.step fsm ~registers:!regs [| false |] in
    regs := r
  done;
  checkb "state held while disabled" true (!regs = frozen)

let test_fsm_onehot_wider_but_valid () =
  let spec = Cnfet.Fsm.counter ~modulo:6 in
  let bin = Cnfet.Fsm.synthesize ~encoding:Cnfet.Fsm.Binary spec in
  let hot = Cnfet.Fsm.synthesize ~encoding:Cnfet.Fsm.One_hot spec in
  checki "binary bits" 3 (Cnfet.Fsm.state_bits bin);
  checki "one-hot bits" 6 (Cnfet.Fsm.state_bits hot);
  checkb "one-hot reset vector is one-hot" true
    (Array.fold_left (fun n b -> if b then n + 1 else n) 0 (Cnfet.Fsm.reset_vector hot) = 1)

let test_fsm_dont_cares_help () =
  (* Invalid state codes are don't-cares: the mod-5 binary counter (3 state
     bits, 3 unused codes) must minimize below the no-dc tabulation. *)
  let spec = Cnfet.Fsm.counter ~modulo:5 in
  let fsm = Cnfet.Fsm.synthesize spec in
  checkb "reasonably small" true (Cnfet.Pla.num_products (Cnfet.Fsm.pla fsm) <= 10)

let test_cascade_stage_structure () =
  let net = Cnfet.Cascade.xor_tree ~n:4 in
  let c = Cnfet.Cascade.of_network net in
  checkb "at least 2 stages" true (Cnfet.Cascade.num_stages c >= 2);
  checki "one plane per stage" (Cnfet.Cascade.num_stages c)
    (List.length (Cnfet.Cascade.plane_dims c));
  checki "one crossbar per stage" (Cnfet.Cascade.num_stages c)
    (List.length (Cnfet.Cascade.crossbar_dims c));
  checkb "area positive" true (Cnfet.Cascade.area Device.Tech.cnfet c > 0)

let () =
  Alcotest.run "cnfet-core"
    [
      ( "gnor-functional",
        [
          Alcotest.test_case "modes to polarities" `Quick test_gnor_modes_map_to_polarities;
          Alcotest.test_case "pg voltages" `Quick test_gnor_pg_voltages;
          Alcotest.test_case "plain NOR" `Quick test_gnor_eval_nor;
          Alcotest.test_case "inverted input" `Quick test_gnor_eval_xor_via_controls;
          Alcotest.test_case "dropped input" `Quick test_gnor_eval_drop;
          Alcotest.test_case "all dropped" `Quick test_gnor_eval_all_dropped;
          Alcotest.test_case "length mismatch" `Quick test_gnor_eval_length_mismatch;
        ] );
      ( "gnor-switch",
        [
          Alcotest.test_case "Fig. 2 configuration" `Quick test_gnor_fig2_configuration;
          Alcotest.test_case "switch == functional (random)" `Quick
            test_gnor_switch_matches_functional_random;
          Alcotest.test_case "reconfiguration" `Quick test_gnor_reconfiguration;
        ] );
      ( "plane",
        [
          Alcotest.test_case "row evaluation" `Quick test_plane_eval_rows;
          Alcotest.test_case "crosspoint counts" `Quick test_plane_counts;
          Alcotest.test_case "copy independence" `Quick test_plane_copy_independent;
          Alcotest.test_case "hw matches functional" `Quick test_plane_hw_matches_functional;
          Alcotest.test_case "bounds" `Quick test_plane_bounds;
        ] );
      ( "pla",
        [
          Alcotest.test_case "maps SOP" `Quick test_pla_maps_sop;
          Alcotest.test_case "random covers" `Quick test_pla_eval_random;
          Alcotest.test_case "single column per input" `Quick test_pla_single_column_per_input;
          Alcotest.test_case "of_minimized smaller" `Quick test_pla_of_minimized_smaller;
          Alcotest.test_case "inverted outputs" `Quick test_pla_inverted_outputs;
          Alcotest.test_case "constant outputs" `Quick test_pla_constant_outputs;
          Alcotest.test_case "product evaluation" `Quick test_pla_eval_products;
          Alcotest.test_case "hw matches functional" `Quick test_pla_hw_matches_functional;
          Alcotest.test_case "of_planes roundtrip" `Quick test_pla_of_planes_roundtrip;
        ] );
      ( "program",
        [
          Alcotest.test_case "roundtrip" `Quick test_program_roundtrip;
          Alcotest.test_case "initial state off" `Quick test_program_initial_state_off;
          Alcotest.test_case "single write" `Quick test_program_single_write;
          Alcotest.test_case "half-select disturb" `Quick test_program_disturb;
          Alcotest.test_case "retention" `Quick test_program_retention;
        ] );
      ( "program-hw",
        [
          Alcotest.test_case "full write level" `Quick test_program_hw_selected_cell_full_level;
          Alcotest.test_case "half-select isolation" `Quick
            test_program_hw_half_select_isolation;
          Alcotest.test_case "plane roundtrip" `Quick test_program_hw_plane_roundtrip;
          Alcotest.test_case "rewrite" `Quick test_program_hw_rewrite;
          Alcotest.test_case "disturb and scrub" `Quick test_program_hw_disturb_and_scrub;
          Alcotest.test_case "matches charge model" `Quick
            test_program_hw_matches_charge_model;
        ] );
      ( "crossbar",
        [
          Alcotest.test_case "copy and equal" `Quick test_crossbar_copy_equal;
          Alcotest.test_case "connectivity" `Quick test_crossbar_connectivity;
          Alcotest.test_case "polarity" `Quick test_crossbar_polarity;
          Alcotest.test_case "components" `Quick test_crossbar_components;
          Alcotest.test_case "resolve" `Quick test_crossbar_resolve;
          Alcotest.test_case "area" `Quick test_crossbar_area;
          Alcotest.test_case "hw matches resolve" `Quick test_crossbar_hw_matches_resolve;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_pla_mapping_preserves;
          QCheck_alcotest.to_alcotest prop_wpla_preserves;
          QCheck_alcotest.to_alcotest prop_cascade_mapping_preserves;
        ] );
      ( "area",
        [
          Alcotest.test_case "Table 1 exact" `Quick test_area_table1_exact;
          Alcotest.test_case "wire reduction factor 2" `Quick test_area_wire_reduction;
          Alcotest.test_case "crossover inputs" `Quick test_area_crossover;
          Alcotest.test_case "profile of PLA" `Quick test_area_profile_of_pla;
          Alcotest.test_case "saving signs (paper §5)" `Quick test_area_saving_sign;
        ] );
      ( "wpla",
        [
          Alcotest.test_case "correct (random)" `Quick test_wpla_correct_random;
          Alcotest.test_case "mixed polarity split" `Quick test_wpla_mixed_polarity_split;
          Alcotest.test_case "all positive" `Quick test_wpla_all_positive;
          Alcotest.test_case "area positive" `Quick test_wpla_area_positive;
        ] );
      ( "bitstream",
        [
          Alcotest.test_case "roundtrip (random)" `Quick test_bitstream_roundtrip_random;
          Alcotest.test_case "compact" `Quick test_bitstream_compact;
          Alcotest.test_case "corruption detected" `Quick test_bitstream_corruption_detected;
          Alcotest.test_case "file io" `Quick test_bitstream_file_io;
        ] );
      ( "folding",
        [
          Alcotest.test_case "disjoint columns fold" `Quick test_folding_disjoint_columns_fold;
          Alcotest.test_case "dense plane unfoldable" `Quick test_folding_dense_plane_unfoldable;
          Alcotest.test_case "validates row separation" `Quick
            test_folding_validates_row_separation;
          Alcotest.test_case "rejects bogus order" `Quick test_folding_validate_rejects_bogus;
          Alcotest.test_case "column users" `Quick test_folding_column_users;
          Alcotest.test_case "row order is a permutation" `Quick
            test_folding_row_order_is_permutation;
          Alcotest.test_case "area never grows" `Quick test_folding_area_never_grows;
        ] );
      ( "pla-timing",
        [
          Alcotest.test_case "positive and consistent" `Quick test_pla_timing_positive;
          Alcotest.test_case "shorter rows are faster" `Quick
            test_pla_timing_shorter_rows_faster;
          Alcotest.test_case "monotone in products" `Quick test_pla_timing_monotone_in_products;
          Alcotest.test_case "activity scales energy" `Quick
            test_pla_timing_activity_scales_energy;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "network eval" `Quick test_cascade_network_eval;
          Alcotest.test_case "rejects forward reference" `Quick
            test_cascade_rejects_forward_reference;
          Alcotest.test_case "xor trees" `Quick test_cascade_xor_tree;
          Alcotest.test_case "beats two-level on parity" `Quick
            test_cascade_beats_two_level_on_parity;
          Alcotest.test_case "two-level embedding" `Quick test_cascade_two_level_embedding;
          Alcotest.test_case "from factored forms" `Quick test_cascade_from_factored;
          Alcotest.test_case "rejects conflicting fanins" `Quick
            test_cascade_rejects_conflicting_fanins;
          Alcotest.test_case "shares subexpressions" `Quick
            test_cascade_factored_shares_subexpressions;
          Alcotest.test_case "stage structure" `Quick test_cascade_stage_structure;
          Alcotest.test_case "switch level (xor tree)" `Quick test_cascade_switch_level;
          Alcotest.test_case "switch level (factored)" `Quick
            test_cascade_switch_level_factored;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "101 detector trace" `Quick test_fsm_sequence_detector_trace;
          Alcotest.test_case "both encodings verify" `Quick test_fsm_both_encodings_verify;
          Alcotest.test_case "counter counts" `Quick test_fsm_counter_counts;
          Alcotest.test_case "disabled counter holds" `Quick test_fsm_disabled_counter_holds;
          Alcotest.test_case "one-hot shape" `Quick test_fsm_onehot_wider_but_valid;
          Alcotest.test_case "don't-cares exploited" `Quick test_fsm_dont_cares_help;
        ] );
    ]
