(* The classification-under-fire battery: quantization round-trip bounds,
   the checked-in pretrained weights pinned against a fresh training run,
   clean-device bit-identity of the mapped crossbar against the integer
   reference over every minterm, deterministic fault reproduction at fixed
   (seed, site, index), repair restoring clean accuracy, jobs-invariance
   and checkpoint-resume bit-exactness of the envelope, a byte-exact
   golden regression on the quick envelope's deterministic view, and a
   planted mis-mapped weight row that the property battery must catch and
   shrink.

   Set DUMP_CLASSIFY=<path> to rewrite the golden JSON after an
   intentional change to the model, mapping, fault model or report. *)

module Model = Classify.Model
module Map = Classify.Map
module Train = Classify.Train
module Dataset = Classify.Dataset
module Envelope = Classify.Envelope
module Inject = Fault.Inject

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)

let all_minterms n =
  List.init (1 lsl n) (fun m -> Array.init n (fun i -> (m lsr i) land 1 = 1))

(* --- quantization -------------------------------------------------------- *)

let test_quantize_roundtrip () =
  (* Round-to-nearest at the max-abs scale: every dequantized value is
     within scale/2 of its float source, extremes land on the window
     edges, and the all-zero corner picks the 1.0 fallback scale. *)
  let rng = Util.Rng.create 77 in
  let w = Array.init 4 (fun _ -> Array.init 6 (fun _ -> Util.Rng.float rng 8.0 -. 4.0)) in
  let b = Array.init 4 (fun _ -> Util.Rng.float rng 2.0 -. 1.0) in
  let scale = Train.quantize_scale ~weight_bits:4 w b in
  let qw, qb = Train.quantize ~weight_bits:4 w b in
  Array.iteri
    (fun c row ->
      Array.iteri
        (fun f q ->
          checkb "weight within half a step" true
            (Float.abs ((float_of_int q *. scale) -. w.(c).(f)) <= (scale /. 2.) +. 1e-12))
        qw.(c);
      ignore row)
    w;
  Array.iteri
    (fun c q ->
      checkb "bias within half a step" true
        (Float.abs ((float_of_int q *. scale) -. b.(c)) <= (scale /. 2.) +. 1e-12))
    qb;
  let flat = Array.to_list (Array.concat (Array.to_list qw)) @ Array.to_list qb in
  checkb "all values inside the signed window" true (List.for_all (fun q -> abs q <= 7) flat);
  (* the largest magnitude maps to an extreme of the window *)
  checkb "max magnitude saturates the window" true (List.exists (fun q -> abs q = 7) flat);
  checkf "zero model gets unit scale" 1.0 (Train.quantize_scale ~weight_bits:4 [| [| 0. |] |] [| 0. |])

let test_pretrained_pins_training () =
  (* The checked-in literal must be exactly what the in-tree trainer
     produces — drift in trainer, dataset or quantizer fails here. *)
  let fresh = Train.train Dataset.default in
  let m = Classify.Pretrained.model in
  checki "n_features" m.Model.n_features fresh.Model.n_features;
  checki "n_classes" m.Model.n_classes fresh.Model.n_classes;
  checki "weight_bits" m.Model.weight_bits fresh.Model.weight_bits;
  checkb "weights byte-identical" true (m.Model.weights = fresh.Model.weights);
  checkb "bias byte-identical" true (m.Model.bias = fresh.Model.bias)

let test_label_codec_total () =
  let m = Classify.Pretrained.model in
  for l = 0 to m.Model.n_classes - 1 do
    checki "encode/decode round-trip" l (Model.decode_label m (Model.encode_label m l))
  done;
  (* decode is total on any label_bits-wide vector, classful or not *)
  let bits = Model.label_bits m in
  for v = 0 to (1 lsl bits) - 1 do
    let vec = Array.init bits (fun i -> (v lsr i) land 1 = 1) in
    checki "decode total" v (Model.decode_label m vec)
  done

(* --- mapping -------------------------------------------------------------- *)

let test_mapped_bit_identical_all_minterms () =
  (* The acceptance bit: mapped crossbar inference equals the integer
     reference on every one of the 2^8 inputs, minimized or not. *)
  let m = Classify.Pretrained.model in
  let mapped = Map.lower m in
  let raw = Map.lower ~minimize:false m in
  List.iter
    (fun x ->
      let want = Model.predict m x in
      checki "minimized mapping matches reference" want (Map.classify mapped x);
      checki "raw minterm mapping matches reference" want (Map.classify raw x))
    (all_minterms m.Model.n_features);
  checkb "minimization shrank the cover" true
    (Cnfet.Pla.num_products mapped.Map.pla < Cnfet.Pla.num_products raw.Map.pla);
  checkb "folded area measured" true (mapped.Map.area > 0)

let test_mapping_grid_corners () =
  (* Corners of the supported model space lower and stay bit-identical:
     minimal (1 feature, 2 classes), degenerate all-zero weights, and a
     non-power-of-two class count whose label encoding has unused codes. *)
  let corner ~n_features ~n_classes ~weights ~bias =
    let m = Model.make ~n_features ~n_classes ~weight_bits:4 ~weights ~bias in
    let mapped = Map.lower m in
    List.iter
      (fun x -> checki "corner bit-identity" (Model.predict m x) (Map.classify mapped x))
      (all_minterms n_features)
  in
  corner ~n_features:1 ~n_classes:2 ~weights:[| [| 3 |]; [| -3 |] |] ~bias:[| 0; 1 |];
  corner ~n_features:3 ~n_classes:2 ~weights:[| [| 0; 0; 0 |]; [| 0; 0; 0 |] |] ~bias:[| 0; 0 |];
  corner ~n_features:4 ~n_classes:3
    ~weights:[| [| 7; -7; 0; 1 |]; [| -1; 2; 3; 0 |]; [| 0; 0; -5; 5 |] |]
    ~bias:[| -2; 0; 2 |]

(* --- fault determinism ---------------------------------------------------- *)

let test_fault_draws_reproduce () =
  (* Every corruption is a pure function of (seed, site, index): two
     engines at the same seed agree draw for draw; a different seed or a
     different index disagrees somewhere. *)
  let plan = { Inject.nothing with weight_sigma = 0.1; read_noise_lsb = 1; adc_bits = 7 } in
  let e1 = Inject.make ~seed:2008 plan in
  let e2 = Inject.make ~seed:2008 plan in
  let e3 = Inject.make ~seed:2009 plan in
  let probe e index = (Inject.weight_factor_of e ~index, Inject.read_offset_of e ~index) in
  let differs = ref false in
  for idx = 0 to 199 do
    checkb "same seed, same draw" true (probe e1 idx = probe e2 idx);
    if probe e1 idx <> probe e3 idx then differs := true
  done;
  checkb "different seed changes some draw" true !differs;
  (* crosspoint faults too: same (seed, index) -> same defect decision,
     and raising the rate on the same seed only adds defects *)
  let flips rate = { Inject.nothing with crosspoint_flip = rate } in
  let lo = Inject.make ~seed:2008 (flips 0.02) in
  let lo' = Inject.make ~seed:2008 (flips 0.02) in
  let hi = Inject.make ~seed:2008 (flips 0.2) in
  let broke = ref 0 in
  for index = 0 to 199 do
    let d = Inject.crosspoint_fault_of lo ~index in
    checkb "crosspoint stream reproduces" true (d = Inject.crosspoint_fault_of lo' ~index);
    if d <> Fault.Defect.Good then begin
      incr broke;
      checkb "defect sets nest across rates" true
        (Inject.crosspoint_fault_of hi ~index <> Fault.Defect.Good)
    end
  done;
  checkb "low rate drew at least one defect" true (!broke > 0)

let test_disarmed_is_reference () =
  (* With the global engine disarmed, predict_dev is one atomic load plus
     predict — bit-identical for every sample index. *)
  let m = Classify.Pretrained.model in
  for i = 0 to 63 do
    let x, _ = Dataset.sample Dataset.default ~seed:31 i in
    checki "disarmed predict_dev = predict" (Model.predict m x) (Model.predict_dev m ~sample:i x)
  done

(* --- envelope ------------------------------------------------------------- *)

let tiny_config ?checkpoint ?(jobs = 1) () =
  {
    Envelope.quick with
    Envelope.jobs;
    samples = 64;
    trials = 2;
    rates = [ 0.0; 0.01; 0.05 ];
    sigmas = [ 0.0; 0.1 ];
    checkpoint;
  }

let test_envelope_degrades_and_repairs () =
  let r = Envelope.run (tiny_config ()) in
  checki "no failed points" 0 (List.length r.Envelope.ep_failures);
  checki "full grid" 6 (List.length r.Envelope.ep_points);
  (* monotone degradation in rate at every sigma, by nested defect sets *)
  List.iteri
    (fun si _ ->
      let col =
        List.filter (fun p -> p.Envelope.pt_index mod 2 = si) r.Envelope.ep_points
        |> List.map (fun p -> p.Envelope.pt_acc_pre)
      in
      let rec mono = function
        | a :: b :: tl ->
          checkb "pre-repair accuracy monotone in rate" true (b <= a +. 1e-9);
          mono (b :: tl)
        | _ -> ()
      in
      mono col)
    [ (); () ];
  List.iter
    (fun p ->
      let open Envelope in
      checkb "repair never hurts" true (p.pt_acc_post >= p.pt_acc_pre -. 1e-9);
      checki "detected splits into repair outcomes" p.pt_detected
        (p.pt_repaired + p.pt_unrepairable + p.pt_reverify_failed);
      checkb "ledger bounded by trials" true (p.pt_detected + p.pt_undetected <= p.pt_trials);
      if p.pt_rate = 0.0 then checkb "clean points need no repair" true (p.pt_injected = 0);
      if p.pt_repaired = p.pt_trials && p.pt_trials > 0 then
        checkf "full repair restores clean accuracy" r.ep_acc_clean p.pt_acc_post)
    r.Envelope.ep_points;
  (* the clean-device confusion matrix sums to the population *)
  let total = Array.fold_left (Array.fold_left ( + )) 0 r.Envelope.ep_confusion in
  checki "confusion counts the population" 64 total

let test_envelope_jobs_invariant () =
  let det c = Assess.Json.to_string ~indent:2 (Envelope.deterministic_json (Envelope.run c)) in
  checkb "deterministic view identical at jobs 1 and 3" true
    (det (tiny_config ~jobs:1 ()) = det (tiny_config ~jobs:3 ()))

let test_envelope_checkpoint_resume () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "classify_ckpt_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "envelope.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let full = Envelope.run (tiny_config ~checkpoint:path ()) in
  let want = Assess.Json.to_string (Envelope.deterministic_json full) in
  (* truncate the checkpoint to its header plus two items and resume *)
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let keep = List.filteri (fun i _ -> i < 3) (List.rev !lines) in
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc (l ^ "\n")) keep;
  close_out oc;
  let resumed = Envelope.run (tiny_config ~checkpoint:path ()) in
  checki "two points came from the checkpoint" 2 resumed.Envelope.ep_resumed;
  checkb "resumed report bit-exact" true
    (Assess.Json.to_string (Envelope.deterministic_json resumed) = want);
  Sys.remove path

(* --- golden regression ---------------------------------------------------- *)

let golden_path name =
  if Sys.file_exists (Filename.concat "golden" name) then Filename.concat "golden" name
  else Filename.concat "test/golden" name

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let test_golden_quick_envelope () =
  let r = Envelope.run Envelope.quick in
  checki "quick envelope fully succeeds" 0 (List.length r.Envelope.ep_failures);
  let json = Assess.Json.to_string ~indent:2 (Envelope.deterministic_json r) ^ "\n" in
  (match Sys.getenv_opt "DUMP_CLASSIFY" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc json;
    close_out oc
  | None -> ());
  let golden = read_file (golden_path "classify_quick.json") in
  if json <> golden then
    Alcotest.failf
      "quick envelope drifted from golden/classify_quick.json (%d vs %d bytes). If the change \
       is intentional, regenerate with: DUMP_CLASSIFY=$PWD/test/golden/classify_quick.json dune \
       exec test/test_classify.exe -- test envelope"
      (String.length json) (String.length golden)

(* --- the planted mis-mapped weight row ------------------------------------ *)

(* A lowering with the classic mapping mistake: the first two weight rows
   are swapped on the way to the crossbar, so the mapped array computes
   argmax of a permuted score vector. The mapped-vs-reference law must
   catch it and shrink to a small witness. *)
let buggy_lower (m : Model.t) =
  let w = Array.map Array.copy m.Model.weights in
  let b = Array.copy m.Model.bias in
  let t = w.(0) in
  w.(0) <- w.(1);
  w.(1) <- t;
  let tb = b.(0) in
  b.(0) <- b.(1);
  b.(1) <- tb;
  Map.lower
    (Model.make ~n_features:m.Model.n_features ~n_classes:m.Model.n_classes
       ~weight_bits:m.Model.weight_bits ~weights:w ~bias:b)

let planted_arb = Prop.Gens.arb_classify_case ~min_classes:3 ()

let planted_law (c : Prop.Gens.classify_case) =
  let m = Prop.Gens.model_of_case c in
  let mapped = buggy_lower m in
  List.for_all
    (fun x -> Map.classify mapped x = Model.predict m x)
    (all_minterms c.Prop.Gens.cl_n_features)

let test_planted_mismap_caught () =
  match
    Prop.Runner.run ~count:500 ~seed:2008 ~name:"planted/mis-mapped-weight-row" planted_arb
      planted_law
  with
  | Prop.Runner.Passed n -> Alcotest.failf "planted mis-mapping not caught in %d cases" n
  | Prop.Runner.Failed f ->
    let shrunk : Prop.Gens.classify_case = f.Prop.Runner.f_value in
    checkb "shrunk case still fails" false (planted_law shrunk);
    checkb "shrinking made progress" true (f.Prop.Runner.f_shrink_steps > 0);
    (* the shrinker drives weights toward zero; the witness should keep
       only a handful of non-zero cells *)
    let nonzero =
      Array.fold_left
        (fun n row -> n + Array.fold_left (fun n w -> if w <> 0 then n + 1 else n) 0 row)
        0 shrunk.Prop.Gens.cl_weights
      + Array.fold_left (fun n b -> if b <> 0 then n + 1 else n) 0 shrunk.Prop.Gens.cl_bias
    in
    if nonzero > 6 then Alcotest.failf "shrunk witness has %d non-zero cells (want <= 6)" nonzero;
    (match
       Prop.Runner.run_case planted_arb planted_law ~case_seed:f.Prop.Runner.f_case_seed
         ~size:f.Prop.Runner.f_size ~case_index:0
     with
    | Some f' ->
      checkb "replay reaches the same shrunk witness" true (f'.Prop.Runner.f_value = shrunk)
    | None -> Alcotest.fail "replay did not reproduce the failure")

(* --- driver ---------------------------------------------------------------- *)

let () =
  Alcotest.run "classify"
    [
      ( "train",
        [
          Alcotest.test_case "quantization round-trip bound" `Quick test_quantize_roundtrip;
          Alcotest.test_case "pretrained pins the trainer" `Quick test_pretrained_pins_training;
          Alcotest.test_case "label codec total" `Quick test_label_codec_total;
        ] );
      ( "map",
        [
          Alcotest.test_case "bit-identical on all minterms" `Quick
            test_mapped_bit_identical_all_minterms;
          Alcotest.test_case "grid corners lower and match" `Quick test_mapping_grid_corners;
        ] );
      ( "faults",
        [
          Alcotest.test_case "draws reproduce from (seed, site, index)" `Quick
            test_fault_draws_reproduce;
          Alcotest.test_case "disarmed path is the reference" `Quick test_disarmed_is_reference;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "degrades monotonically, repair restores" `Quick
            test_envelope_degrades_and_repairs;
          Alcotest.test_case "jobs-invariant deterministic view" `Quick
            test_envelope_jobs_invariant;
          Alcotest.test_case "checkpoint resume bit-exact" `Quick test_envelope_checkpoint_resume;
          Alcotest.test_case "golden quick envelope" `Quick test_golden_quick_envelope;
        ] );
      ( "planted",
        [
          Alcotest.test_case "mis-mapped weight row caught and shrunk" `Quick
            test_planted_mismap_caught;
        ] );
    ]
