(* The property-testing engine tested on itself: determinism, shrinking,
   corpus replay ordering, and a deliberately planted cube-kernel bug that
   the differential battery must catch and shrink to a tiny witness. *)

module Cube = Logic.Cube

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Scratch directories under the test's working directory (the dune
   sandbox), wiped at first use so reruns start clean. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Filename.concat "_prop_scratch" (Printf.sprintf "corpus%d" !n) in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

(* --- sexp + corpus ------------------------------------------------------ *)

let test_sexp_roundtrip () =
  let open Prop.Sexp in
  let s = List [ Atom "prop"; Atom "with space"; List [ Atom "q\"uote"; Atom "42" ] ] in
  (match of_string (to_string s) with
  | Ok s' -> checkb "sexp round-trip" true (s = s')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (match of_string "(a b) trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match of_string "((k v))" with
  | Ok s -> check Alcotest.(option string) "field" (Some "v") (field_string s "k")
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_corpus_roundtrip () =
  let dir = fresh_dir () in
  let e = { Prop.Corpus.prop = "cube/ops-vs-naive"; seed = 123456789; size = 22 } in
  let path = Prop.Corpus.save ~dir e in
  match Prop.Corpus.load ~dir with
  | [ (p, Ok e') ] ->
    check Alcotest.string "path" path p;
    checkb "entry round-trip" true (e = e')
  | other -> Alcotest.failf "expected one parsed entry, got %d" (List.length other)

(* --- generator / runner determinism ------------------------------------- *)

let test_gen_deterministic () =
  let gen = Prop.Gens.cover_spec () in
  let v1 = Prop.Gen.run gen (Util.Rng.create 42) ~size:20 in
  let v2 = Prop.Gen.run gen (Util.Rng.create 42) ~size:20 in
  checkb "same seed, same value" true (v1 = v2);
  let v3 = Prop.Gen.run gen (Util.Rng.create 43) ~size:20 in
  checkb "different seed, different value" true (v1 <> v3)

let test_shrink_int_toward () =
  let first s = match s () with Seq.Cons (x, _) -> Some x | Seq.Nil -> None in
  check Alcotest.(option int) "dest comes first" (Some 0) (first (Prop.Shrink.int_toward 0 16));
  let all = List.of_seq (Prop.Shrink.int_toward 0 16) in
  checkb "strictly smaller candidates" true (List.for_all (fun x -> x >= 0 && x < 16) all)

let some_prop = List.nth Prop.Props.all 0

let test_runner_deterministic () =
  let o1 = Prop.Runner.check ~seed:2008 some_prop in
  let o2 = Prop.Runner.check ~seed:2008 some_prop in
  checkb "identical outcome records" true (o1 = o2)

(* --- the planted cube-kernel bug ---------------------------------------- *)

(* A test-only copy of cube containment with the classic packed-kernel
   mistake: only the first word (literal positions 0–30) is inspected, so
   any conflict at position >= 31 goes unseen. The differential property
   against the real kernel must catch it at n_in = 35. *)
let buggy_contains a b =
  let ok = ref true in
  for i = 0 to min 31 (Cube.num_inputs a) - 1 do
    let ai = Cube.raw_get a i and bi = Cube.raw_get b i in
    if bi land ai <> bi then ok := false
  done;
  let oa = Cube.outputs a and ob = Cube.outputs b in
  for o = 0 to Cube.num_outputs b - 1 do
    if Util.Bitvec.get ob o && not (Util.Bitvec.get oa o) then ok := false
  done;
  !ok

let spec_literals (s : Prop.Gens.cube_spec) =
  Array.fold_left (fun n l -> if l <> 3 then n + 1 else n) 0 s.Prop.Gens.lits

let planted_arb = Prop.Gens.arb_cube_case ~widths:[ 35 ] ()

let planted_law (c : Prop.Gens.cube_case) =
  let a, b = Prop.Gens.cube_case_to_cubes c in
  buggy_contains a b = Cube.contains a b

let test_planted_bug_caught () =
  match
    Prop.Runner.run ~count:2000 ~seed:2008 ~name:"planted/single-word-containment" planted_arb
      planted_law
  with
  | Prop.Runner.Passed n -> Alcotest.failf "planted bug not caught in %d cases" n
  | Prop.Runner.Failed f ->
    let shrunk : Prop.Gens.cube_case = f.Prop.Runner.f_value in
    checkb "shrunk case still fails" false (planted_law shrunk);
    (* The witness is one cube pair with at most 8 literals between the two
       cubes — for this bug the greedy shrinker should reach a single
       blocking literal past position 30. *)
    let lits = spec_literals shrunk.Prop.Gens.cc_a + spec_literals shrunk.Prop.Gens.cc_b in
    if lits > 8 then Alcotest.failf "shrunk witness has %d literals (want <= 8)" lits;
    checkb "shrinking made progress" true (f.Prop.Runner.f_shrink_steps > 0);
    (* Replaying the recorded (seed, size) finds and re-shrinks the same
       counterexample. *)
    (match
       Prop.Runner.run_case planted_arb planted_law ~case_seed:f.Prop.Runner.f_case_seed
         ~size:f.Prop.Runner.f_size ~case_index:0
     with
    | Some f' ->
      checkb "replay reaches the same shrunk witness" true
        (f'.Prop.Runner.f_value = shrunk)
    | None -> Alcotest.fail "replay did not reproduce the failure")

(* --- fuzz orchestration -------------------------------------------------- *)

let planted_prop =
  Prop.Runner.make ~name:"planted/single-word-containment" ~count:2000 planted_arb planted_law

let test_fuzz_reproducible () =
  let config dir = { Prop.Fuzz.default_config with corpus_dir = dir } in
  let r1 = Prop.Fuzz.run ~props:Prop.Props.all (config (fresh_dir ())) in
  let r2 = Prop.Fuzz.run ~props:Prop.Props.all (config (fresh_dir ())) in
  checkb "two identical invocations, identical reports" true
    (Prop.Fuzz.render r1 = Prop.Fuzz.render r2);
  checki "no failures in the battery" 0 (Prop.Fuzz.failures r1);
  checkb "at least 10 properties ran" true (List.length r1.Prop.Fuzz.fresh >= 10)

let test_filter_stability () =
  (* A property's outcome must not depend on which other properties run. *)
  let dir1 = fresh_dir () and dir2 = fresh_dir () in
  let full =
    Prop.Fuzz.run ~props:Prop.Props.all { Prop.Fuzz.default_config with corpus_dir = dir1 }
  in
  let filtered =
    Prop.Fuzz.run ~props:Prop.Props.all
      { Prop.Fuzz.default_config with corpus_dir = dir2; filter = Some "cube/ops" }
  in
  let find report =
    List.find (fun (o : Prop.Runner.outcome) -> o.prop = "cube/ops-vs-naive")
      report.Prop.Fuzz.fresh
  in
  checkb "filtered run sees the same cases" true (find full = find filtered)

let test_jobs_deterministic () =
  let run jobs =
    Prop.Fuzz.run ~props:Prop.Props.all
      { Prop.Fuzz.default_config with corpus_dir = fresh_dir (); jobs }
  in
  let seq = run 1 and par = run 2 in
  checkb "parallel run matches sequential" true (seq.Prop.Fuzz.fresh = par.Prop.Fuzz.fresh)

let test_corpus_replay_first () =
  let dir = fresh_dir () in
  (* First run: the planted property fails and its counterexample is
     persisted. *)
  let props = [ planted_prop; some_prop ] in
  let cfg = { Prop.Fuzz.default_config with corpus_dir = dir } in
  let r1 = Prop.Fuzz.run ~props cfg in
  checki "one counterexample saved" 1 (List.length r1.Prop.Fuzz.saved);
  checkb "nothing replayed on a fresh corpus" true (r1.Prop.Fuzz.replayed = []);
  (* Second run: the corpus entry is replayed (and still fails) before any
     fresh generation. *)
  let r2 = Prop.Fuzz.run ~props cfg in
  (match r2.Prop.Fuzz.replayed with
  | [ Prop.Runner.Replayed { path; entry; outcome } ] ->
    checkb "replayed the saved file" true (List.mem path r1.Prop.Fuzz.saved);
    check Alcotest.string "replayed the planted property" "planted/single-word-containment"
      entry.Prop.Corpus.prop;
    checkb "replay still fails" true (outcome.Prop.Runner.failure <> None)
  | other -> Alcotest.failf "expected exactly one replayed entry, got %d" (List.length other));
  (* An entry naming an unregistered property is reported, not dropped. *)
  let r3 = Prop.Fuzz.run ~props:[ some_prop ] cfg in
  match r3.Prop.Fuzz.replayed with
  | [ Prop.Runner.Unreadable _ ] -> ()
  | _ -> Alcotest.fail "stale corpus entry should be reported as unreadable"

let test_metrics_recorded () =
  let metrics = Runtime.Metrics.create () in
  ignore (Prop.Runner.check ~metrics ~seed:2008 some_prop);
  let count name =
    match List.assoc_opt name (Runtime.Metrics.counters metrics) with Some n -> n | None -> 0
  in
  checkb "cases counted" true (count "prop.cases_total" > 0);
  checki "per-property counter matches" (count "prop.cases_total")
    (count "prop.cube/ops-vs-naive.cases")

let () =
  Alcotest.run "prop"
    [
      ( "engine",
        [
          Alcotest.test_case "sexp round-trip" `Quick test_sexp_roundtrip;
          Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "generators are seed-deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "shrink targets the destination first" `Quick test_shrink_int_toward;
          Alcotest.test_case "runner outcome is reproducible" `Quick test_runner_deterministic;
        ] );
      ( "planted-bug",
        [ Alcotest.test_case "single-word containment bug caught and shrunk" `Quick test_planted_bug_caught ] );
      ( "fuzz",
        [
          Alcotest.test_case "fixed seed reproduces the whole run" `Quick test_fuzz_reproducible;
          Alcotest.test_case "outcome independent of --filter" `Quick test_filter_stability;
          Alcotest.test_case "outcome independent of --jobs" `Quick test_jobs_deterministic;
          Alcotest.test_case "corpus replays before fresh generation" `Quick test_corpus_replay_first;
          Alcotest.test_case "metrics counters recorded" `Quick test_metrics_recorded;
        ] );
    ]
