(* Tests for the chaos/robustness stack: deterministic fault injection,
   supervised retry with backoff and deadlines, the cache circuit
   breaker, worker-crash isolation and the end-to-end self-healing
   report. Everything time-dependent runs against [Obs.Clock.fixed_step]
   and an injected no-op sleep, so no test waits on a real clock. *)

module Inject = Fault.Inject
module Pool = Runtime.Pool
module Cache = Runtime.Cache
module Supervisor = Runtime.Supervisor
module Metrics = Runtime.Metrics
module Chaos = Runtime.Chaos

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let counter m name = Option.value ~default:0 (List.assoc_opt name (Metrics.counters m))

(* --- injection engine ----------------------------------------------------- *)

let crash_all = { Inject.nothing with Inject.worker_crash = 1.0 }

let test_inject_disarmed_noop () =
  checkb "no engine armed" false (Inject.armed ());
  checkb "tap is No_fault" true (Inject.tap (Inject.Pool_task { index = 0 }) = Inject.No_fault)

let test_inject_deterministic () =
  let draw seed =
    Inject.with_armed ~seed Inject.default (fun t ->
        let actions =
          List.init 200 (fun i ->
              match Inject.tap (Inject.Pool_task { index = i }) with
              | Inject.No_fault -> 'n'
              | Inject.Raise _ -> 'r'
              | Inject.Crash_worker _ -> 'c'
              | Inject.Stall _ -> 's'
              | Inject.Corrupt -> 'x')
        in
        (actions, Inject.counts t, Inject.total t))
  in
  let a1, c1, t1 = draw 7 and a2, c2, t2 = draw 7 in
  checkb "same seed, same decisions" true (a1 = a2);
  checkb "same seed, same counts" true (c1 = c2);
  checki "same seed, same total" t1 t2;
  let a3, _, _ = draw 8 in
  checkb "different seed, different decisions" true (a1 <> a3)

let test_inject_single_engine () =
  Inject.with_armed ~seed:1 Inject.nothing (fun _ ->
      match Inject.arm ~seed:2 Inject.nothing with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "second arm must be rejected");
  checkb "disarmed after with_armed" false (Inject.armed ())

let test_inject_crosspoint_and_drift () =
  Inject.with_armed ~seed:3
    { Inject.nothing with Inject.crosspoint_flip = 1.0; pg_drift = 1.0; pg_drift_v = 0.7 }
    (fun _ ->
      checkb "crosspoint always fires" true
        (Inject.crosspoint_fault ~index:0 <> Fault.Defect.Good);
      let d = Inject.pg_drift ~index:0 in
      checkb "drift magnitude" true (Float.abs (Float.abs d -. 0.7) < 1e-9));
  checkb "good when disarmed" true (Inject.crosspoint_fault ~index:0 = Fault.Defect.Good);
  checkb "no drift when disarmed" true (Inject.pg_drift ~index:0 = 0.)

(* --- backoff --------------------------------------------------------------- *)

let test_backoff_schedule () =
  let p = { Supervisor.Backoff.base_s = 0.01; cap_s = 0.2 } in
  let sched rng_seed = Supervisor.Backoff.schedule p (Util.Rng.create rng_seed) ~attempts:12 in
  let s1 = sched 5 in
  checki "requested length" 12 (List.length s1);
  List.iter
    (fun d -> checkb "delay within [base, cap]" true (d >= p.Supervisor.Backoff.base_s && d <= p.Supervisor.Backoff.cap_s))
    s1;
  checkb "deterministic in seed" true (s1 = sched 5);
  checkb "jitter varies with seed" true (s1 <> sched 6);
  (* The envelope grows: the max over the schedule reaches the cap
     region, the first delay starts near the base. *)
  checkb "first delay is small" true (List.hd s1 <= 3. *. p.Supervisor.Backoff.base_s);
  checkb "envelope reaches cap" true (List.exists (fun d -> d > 0.1) s1)

(* --- supervisor: deadline and retry ---------------------------------------- *)

let fast_clock () = Obs.Clock.fixed_step ~step_ns:1_000_000L () (* 1 ms per reading *)

let test_deadline_expiry () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let release = Atomic.make false in
      let sup =
        Supervisor.create ~clock:(fast_clock ())
          ~sleep:(fun _ -> ())
          ~config:{ Supervisor.default_config with max_attempts = 1; deadline_s = Some 0.01 }
          pool
      in
      (match Supervisor.run ~label:"stuck" sup (fun () -> while not (Atomic.get release) do Domain.cpu_relax () done) with
      | () -> Alcotest.fail "expected Deadline_exceeded"
      | exception Supervisor.Deadline_exceeded { label; attempt; _ } ->
        Alcotest.check Alcotest.string "label" "stuck" label;
        checki "first attempt" 1 attempt);
      Atomic.set release true)

let test_retry_then_success () =
  let metrics = Metrics.create () in
  Pool.with_pool ~metrics ~jobs:1 (fun pool ->
      let sup =
        Supervisor.create ~metrics
          ~sleep:(fun _ -> ())
          ~config:{ Supervisor.default_config with max_attempts = 3 }
          pool
      in
      let tries = Atomic.make 0 in
      let v =
        Supervisor.run sup (fun () ->
            if Atomic.fetch_and_add tries 1 < 2 then failwith "flaky";
            42)
      in
      checki "third attempt succeeded" 42 v;
      checki "two retries counted" 2 (counter metrics "supervisor.retries"))

let test_retries_exhausted () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let sup =
        Supervisor.create
          ~sleep:(fun _ -> ())
          ~config:{ Supervisor.default_config with max_attempts = 2 }
          pool
      in
      match Supervisor.run ~label:"doomed" sup (fun () -> failwith "always") with
      | _ -> Alcotest.fail "expected Retries_exhausted"
      | exception Supervisor.Retries_exhausted { label; attempts; last } ->
        Alcotest.check Alcotest.string "label" "doomed" label;
        checki "attempts" 2 attempts;
        checkb "last exception kept" true (last = Failure "always"))

let test_supervised_run_all_retries_per_index () =
  let metrics = Metrics.create () in
  Pool.with_pool ~metrics ~jobs:2 (fun pool ->
      let sup =
        Supervisor.create ~metrics
          ~sleep:(fun _ -> ())
          ~config:{ Supervisor.default_config with max_attempts = 2 }
          pool
      in
      let failed_once = Atomic.make false in
      let thunks =
        Array.init 6 (fun i () ->
            if i = 3 && not (Atomic.exchange failed_once true) then failwith "transient";
            i * i)
      in
      let r = Supervisor.run_all sup thunks in
      checkb "all results present" true (r = Array.init 6 (fun i -> i * i));
      checki "exactly one retry" 1 (counter metrics "supervisor.retries"))

(* --- circuit breaker -------------------------------------------------------- *)

let breaker_cover = Mcnc.Generators.majority 3

let corrupt_next_serve cache =
  (* Plant rot: compile (or re-compile) the entry, then flip its contents
     under the recorded checksum so the next serve must detect it. The
     first compile may itself trip over rot left by a previous plant (it
     evicts and raises); the recompile is then clean. *)
  let compiled =
    try Cache.compile cache breaker_cover
    with Cache.Corrupt_entry _ -> Cache.compile cache breaker_cover
  in
  Cache.corrupt_for_test compiled

let test_breaker_opens_and_recovers () =
  let metrics = Metrics.create () in
  Pool.with_pool ~metrics ~jobs:1 (fun pool ->
      let golden = Cnfet.Pla.eval (Cnfet.Pla.of_cover breaker_cover) in
      let inputs = [| true; false; true |] in
      let sup =
        Supervisor.create ~metrics ~clock:(fast_clock ())
          ~sleep:(fun _ -> ())
          ~config:
            {
              Supervisor.default_config with
              breaker_threshold = 3;
              breaker_cooldown_s = 0.05 (* 50 clock readings at 1 ms *);
            }
          pool
      in
      let cache = Cache.create () in
      checkb "starts closed" true (Supervisor.breaker_state sup = Supervisor.Closed);
      for _ = 1 to 3 do
        corrupt_next_serve cache;
        let out = Supervisor.eval sup cache breaker_cover inputs in
        checkb "fallback result correct" true (out = golden inputs)
      done;
      checkb "opened after threshold strikes" true (Supervisor.breaker_state sup = Supervisor.Open);
      checki "one open recorded" 1 (counter metrics "supervisor.breaker_opens");
      (* While open every eval bypasses the cache, corrupt or not. *)
      let before = Cache.hits cache + Cache.misses cache in
      checkb "open-state eval correct" true (Supervisor.eval sup cache breaker_cover inputs = golden inputs);
      checki "cache untouched while open" before (Cache.hits cache + Cache.misses cache);
      (* Let the cooldown pass: each eval reads the clock at least once,
         so spin until the half-open probe fires and succeeds. *)
      let rec drain n =
        if n = 0 then Alcotest.fail "breaker never closed"
        else begin
          ignore (Supervisor.eval sup cache breaker_cover inputs);
          if Supervisor.breaker_state sup <> Supervisor.Closed then drain (n - 1)
        end
      in
      drain 200;
      checkb "clean probe closed the breaker" true
        (Supervisor.breaker_state sup = Supervisor.Closed);
      checki "close recorded" 1 (counter metrics "supervisor.breaker_closes"))

let test_breaker_halfopen_failure_reopens () =
  let metrics = Metrics.create () in
  Pool.with_pool ~metrics ~jobs:1 (fun pool ->
      let inputs = [| false; true; true |] in
      let sup =
        Supervisor.create ~metrics ~clock:(fast_clock ())
          ~sleep:(fun _ -> ())
          ~config:
            { Supervisor.default_config with breaker_threshold = 1; breaker_cooldown_s = 0.002 }
          pool
      in
      let cache = Cache.create () in
      corrupt_next_serve cache;
      ignore (Supervisor.eval sup cache breaker_cover inputs);
      checkb "opened on first strike" true (Supervisor.breaker_state sup = Supervisor.Open);
      (* Cooldown passes almost immediately; make the half-open probe hit
         rot again: it must re-open, not close. *)
      let reopened = ref false in
      for _ = 1 to 10 do
        if not !reopened then begin
          corrupt_next_serve cache;
          ignore (Supervisor.eval sup cache breaker_cover inputs);
          if counter metrics "supervisor.breaker_opens" >= 2 then reopened := true
        end
      done;
      checkb "failed probe re-opened" true !reopened;
      checki "never closed" 0 (counter metrics "supervisor.breaker_closes"))

(* --- cache corruption under injection -------------------------------------- *)

let test_injected_store_corruption_detected () =
  Inject.with_armed ~seed:11 { Inject.nothing with Inject.cache_corrupt = 1.0 } (fun t ->
      let metrics = Metrics.create () in
      Pool.with_pool ~metrics ~jobs:1 (fun pool ->
          let sup = Supervisor.create ~metrics pool in
          let cache = Cache.create () in
          let golden = Cnfet.Pla.eval (Cnfet.Pla.of_cover breaker_cover) in
          let inputs = [| true; true; false |] in
          checkb "served correctly via fallback" true
            (Supervisor.eval sup cache breaker_cover inputs = golden inputs);
          checkb "corruption detected at store" true (Cache.corruptions cache >= 1);
          checkb "fault counted by engine" true
            (List.assoc "cache_corrupt" (Inject.counts t) >= 1);
          checkb "fallback eval counted" true (counter metrics "supervisor.fallback_evals" >= 1)))

(* --- worker crash isolation ------------------------------------------------- *)

let test_worker_crash_respawn () =
  let metrics = Metrics.create () in
  Pool.with_pool ~metrics ~jobs:2 (fun pool ->
      Inject.with_armed ~seed:5 crash_all (fun _ ->
          match Pool.await (Pool.submit pool (fun () -> 1)) with
          | _ -> Alcotest.fail "task should have been crashed"
          | exception Inject.Injected_fault _ -> ());
      checkb "crash counted" true (Pool.crashes pool >= 1);
      (* The pool must still serve after losing a worker: the injection is
         disarmed now, so fresh tasks run clean on the respawned domain. *)
      let r = Pool.run_all pool (Array.init 16 (fun i () -> i + 1)) in
      checkb "pool drains after respawn" true (r = Array.init 16 (fun i -> i + 1));
      checkb "respawns recorded" true (counter metrics "pool.respawns" >= 1))

let test_run_all_drains_after_crash () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let done_flags = Array.make 8 false in
      let thunks =
        Array.init 8 (fun i () ->
            if i = 2 then failwith "boom2";
            if i = 5 then failwith "boom5";
            done_flags.(i) <- true)
      in
      (match Pool.run_all pool thunks with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure m -> Alcotest.check Alcotest.string "smallest index wins" "boom2" m);
      Array.iteri
        (fun i flag -> if i <> 2 && i <> 5 then checkb "sibling completed" true flag)
        done_flags)

(* --- end-to-end chaos report ------------------------------------------------ *)

let test_chaos_report_heals () =
  let r = Chaos.run ~seed:42 ~budget_s:30. ~max_rounds:2 ~jobs:2 () in
  checki "requested rounds ran" 2 r.Chaos.rounds;
  checki "no miscompares against the oracle" 0 r.Chaos.miscompares;
  checki "every detected fault handled" 0 (Chaos.detected_unrepaired r);
  checkb "faults were actually injected" true (r.Chaos.injected_total > 0);
  let json = Chaos.to_json r in
  let contains needle =
    let n = String.length needle and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> checkb (Printf.sprintf "report has %s" needle) true (contains needle))
    [ "\"degradation\""; "\"detected_unrepaired\""; "\"recovery_latency_s\""; "\"scenarios\"" ]

let test_chaos_deterministic_injection () =
  let r1 = Chaos.run ~seed:9 ~budget_s:30. ~max_rounds:1 ~jobs:2 () in
  let r2 = Chaos.run ~seed:9 ~budget_s:30. ~max_rounds:1 ~jobs:2 () in
  checkb "same seed, same injected set" true
    (r1.Chaos.injected_by_category = r2.Chaos.injected_by_category);
  checkb "same seed, same scenario tallies" true (r1.Chaos.scenarios = r2.Chaos.scenarios)

let () =
  Alcotest.run "chaos"
    [
      ( "inject",
        [
          Alcotest.test_case "disarmed is no-op" `Quick test_inject_disarmed_noop;
          Alcotest.test_case "seeded determinism" `Quick test_inject_deterministic;
          Alcotest.test_case "single engine" `Quick test_inject_single_engine;
          Alcotest.test_case "crosspoint and drift draws" `Quick test_inject_crosspoint_and_drift;
        ] );
      ( "backoff",
        [ Alcotest.test_case "decorrelated jitter schedule" `Quick test_backoff_schedule ] );
      ( "supervisor",
        [
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "retry then success" `Quick test_retry_then_success;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "run_all retries per index" `Quick
            test_supervised_run_all_retries_per_index;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "open then recover" `Quick test_breaker_opens_and_recovers;
          Alcotest.test_case "half-open failure re-opens" `Quick
            test_breaker_halfopen_failure_reopens;
          Alcotest.test_case "injected store corruption" `Quick
            test_injected_store_corruption_detected;
        ] );
      ( "crash isolation",
        [
          Alcotest.test_case "worker crash respawn" `Quick test_worker_crash_respawn;
          Alcotest.test_case "run_all drains after failures" `Quick
            test_run_all_drains_after_crash;
        ] );
      ( "self-healing",
        [
          Alcotest.test_case "chaos report heals" `Quick test_chaos_report_heals;
          Alcotest.test_case "deterministic injection" `Quick test_chaos_deterministic_injection;
        ] );
    ]
