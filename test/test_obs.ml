(* lib/obs: structured tracing spans.

   The centerpiece is a golden-file test: a scripted span sequence under a
   deterministic fixed-step clock must export byte-for-byte identical
   Chrome trace-event JSON (test/golden/trace_spans.json), including while
   unrelated domains are tracing concurrently. Around it: nesting-depth
   bookkeeping, [Event.check] rejection of malformed traces, exception
   safety of [Trace.span], ring-buffer overflow accounting, schema
   validation, the text profile, and the process-wide install hooks.

   Set DUMP_TRACE=<path> to write the freshly rendered golden JSON for
   updating the golden file after an intentional format change. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- the scripted golden sequence ---------------------------------------- *)

(* Spans from three subsystems, nested three deep, with args exercising
   JSON escaping; 12 events on a single track. *)
let scripted_trace () =
  let clock = Obs.Clock.fixed_step ~start_ns:1000L ~step_ns:500L () in
  let t = Obs.Trace.create ~clock () in
  Obs.Trace.span t ~args:[ ("seed", "2008") ] "bench.run" (fun () ->
      Obs.Trace.span t "espresso.minimize" (fun () ->
          Obs.Trace.span t "espresso.expand" (fun () ->
              Obs.Trace.instant t ~args:[ ("cubes", "12"); ("q\"k", "v\\w") ] "espresso.cube");
          Obs.Trace.span t "espresso.reduce" (fun () -> ()));
      Obs.Trace.span t "sim.phase" (fun () ->
          Obs.Trace.instant t ~args:[ ("sweeps", "3") ] "sim.settle"));
  t

let golden_path name =
  if Sys.file_exists (Filename.concat "golden" name) then Filename.concat "golden" name
  else Filename.concat "test/golden" name

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let test_golden_chrome_json () =
  let t = scripted_trace () in
  let events = Obs.Trace.events t in
  checki "event count" 12 (List.length events);
  checki "single track" 1 (Obs.Trace.tracks t);
  checki "nothing dropped" 0 (Obs.Trace.dropped t);
  (match Obs.Event.check events with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "scripted trace ill-formed: %s" msg);
  let json = Obs.Export.to_chrome_json events in
  (match Sys.getenv_opt "DUMP_TRACE" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc json;
    close_out oc
  | None -> ());
  (match Obs.Export.validate_chrome_json json with
  | Ok n -> checki "validator counts every event" 12 n
  | Error msg -> Alcotest.failf "exported JSON failed validation: %s" msg);
  let golden = read_file (golden_path "trace_spans.json") in
  if json <> golden then
    Alcotest.failf
      "trace JSON drifted from golden/trace_spans.json (%d vs %d bytes). If the change is \
       intentional, regenerate with: DUMP_TRACE=test/golden/trace_spans.json dune exec \
       test/test_obs.exe -- test golden"
      (String.length json) (String.length golden)

(* The injected clock makes the export deterministic even while other
   domains are busy tracing into their own collectors — the analogue of
   running a traced benchmark at different --jobs counts. *)
let test_golden_deterministic_under_noise () =
  let reference = Obs.Export.to_chrome_json (Obs.Trace.events (scripted_trace ())) in
  let stop = Atomic.make false in
  let noisy () =
    let t = Obs.Trace.create ~capacity:64 () in
    while not (Atomic.get stop) do
      Obs.Trace.span t "noise.work" (fun () -> Obs.Trace.instant t "noise.tick")
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn noisy) in
  let runs = List.init 4 (fun _ -> Obs.Export.to_chrome_json (Obs.Trace.events (scripted_trace ()))) in
  Atomic.set stop true;
  Array.iter Domain.join domains;
  List.iteri (fun i run -> checks (Printf.sprintf "run %d = reference" i) reference run) runs

let test_nesting_depths () =
  let t = scripted_trace () in
  let events = Obs.Trace.events t in
  let depths = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.depth) events in
  checkb "depth profile" true
    (depths = [ 0; 1; 2; 3; 2; 2; 2; 1; 1; 2; 1; 0 ]);
  let seqs = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) events in
  checkb "seq is the emission index" true (seqs = List.init 12 Fun.id);
  let ts = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.ts_ns) events in
  checkb "fixed-step timestamps" true
    (ts = List.init 12 (fun i -> Int64.of_int (1000 + (500 * i))))

(* --- Event.check on malformed traces ------------------------------------- *)

let ev ?(name = "s") ?(phase = Obs.Event.Begin) ?(ts_ns = 0L) ?(track = 0) ?(depth = 0)
    ~seq () =
  { Obs.Event.name; phase; ts_ns; track; depth; seq; args = [] }

let expect_error label substring events =
  match Obs.Event.check events with
  | Ok () -> Alcotest.failf "%s: expected Error, got Ok" label
  | Error msg ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    checkb (label ^ ": message mentions the defect") true (contains msg substring)

let test_check_rejects_malformed () =
  expect_error "unterminated span" "never ended" [ ev ~seq:0 () ];
  expect_error "end with no open span" "no open span"
    [ ev ~phase:Obs.Event.End ~seq:0 () ];
  expect_error "mismatched end name" "does not match"
    [
      ev ~name:"a" ~seq:0 ();
      ev ~name:"b" ~phase:Obs.Event.End ~depth:0 ~seq:1 ();
    ];
  expect_error "backwards timestamp" "went backwards"
    [
      ev ~name:"a" ~ts_ns:10L ~seq:0 ();
      ev ~name:"a" ~phase:Obs.Event.End ~ts_ns:5L ~seq:1 ();
    ];
  expect_error "wrong begin depth" "stack height"
    [
      ev ~name:"a" ~depth:1 ~seq:0 ();
      ev ~name:"a" ~phase:Obs.Event.End ~depth:1 ~seq:1 ();
    ];
  expect_error "wrong end depth" "expected"
    [
      ev ~name:"a" ~seq:0 ();
      ev ~name:"a" ~phase:Obs.Event.End ~depth:3 ~seq:1 ();
    ];
  (* Tracks are independent: a defect on track 1 is reported even when
     track 0 is clean. *)
  expect_error "per-track stacks" "track 1"
    [
      ev ~name:"ok" ~seq:0 ();
      ev ~name:"ok" ~phase:Obs.Event.End ~seq:1 ();
      ev ~name:"open" ~track:1 ~seq:0 ();
    ]

exception Kaboom

let test_exception_safety () =
  let t = Obs.Trace.create ~clock:(Obs.Clock.fixed_step ()) () in
  (match Obs.Trace.span t "outer" (fun () ->
       Obs.Trace.span t "inner" (fun () -> raise Kaboom))
   with
  | () -> Alcotest.fail "expected Kaboom to propagate"
  | exception Kaboom -> ());
  let events = Obs.Trace.events t in
  checki "both spans closed" 4 (List.length events);
  match Obs.Event.check events with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trace after exception ill-formed: %s" msg

let test_ring_overflow () =
  (* Capacity clamps to the minimum of 16; 40 instants overflow it. *)
  let t = Obs.Trace.create ~clock:(Obs.Clock.fixed_step ()) ~capacity:1 () in
  for i = 1 to 40 do
    Obs.Trace.instant t ~args:[ ("i", string_of_int i) ] "tick"
  done;
  let events = Obs.Trace.events t in
  checki "ring keeps the newest 16" 16 (List.length events);
  checki "dropped counts the rest" 24 (Obs.Trace.dropped t);
  checkb "newest events retained" true
    (match List.rev events with
    | last :: _ -> last.Obs.Event.args = [ ("i", "40") ]
    | [] -> false);
  (* The text profile skips unmatched events instead of failing. *)
  let t2 = Obs.Trace.create ~clock:(Obs.Clock.fixed_step ()) ~capacity:1 () in
  for _ = 1 to 20 do
    Obs.Trace.span t2 "spin" (fun () -> ())
  done;
  ignore (Obs.Export.text_profile (Obs.Trace.events t2))

let test_observer_callback () =
  let t = Obs.Trace.create ~clock:(Obs.Clock.fixed_step ~step_ns:500L ()) () in
  let seen = ref [] in
  Obs.Trace.set_observer t (fun ~name ~dur_s -> seen := (name, dur_s) :: !seen);
  Obs.Trace.span t "a" (fun () -> Obs.Trace.span t "b" (fun () -> ()));
  (* Ends fire innermost first; each empty span spans one clock step. *)
  match List.rev !seen with
  | [ ("b", db); ("a", da) ] ->
    checkb "inner duration = 1 step" true (Float.abs (db -. 500e-9) < 1e-15);
    checkb "outer duration = 3 steps" true (Float.abs (da -. 1500e-9) < 1e-15)
  | other -> Alcotest.failf "expected two observations, got %d" (List.length other)

let test_multi_domain_wellformed () =
  let t = Obs.Trace.create ~clock:(Obs.Clock.fixed_step ()) () in
  let worker k () =
    for i = 1 to 50 do
      Obs.Trace.span t "worker.outer" (fun () ->
          Obs.Trace.span t "worker.inner" (fun () ->
              Obs.Trace.instant t ~args:[ ("k", string_of_int (k + i)) ] "worker.tick"))
    done
  in
  let domains = Array.init 4 (fun k -> Domain.spawn (worker k)) in
  Array.iter Domain.join domains;
  checki "one track per domain" 4 (Obs.Trace.tracks t);
  let events = Obs.Trace.events t in
  checki "all events retained" (4 * 50 * 5) (List.length events);
  (match Obs.Event.check events with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "multi-domain trace ill-formed: %s" msg);
  match Obs.Export.validate_chrome_json (Obs.Export.to_chrome_json events) with
  | Ok n -> checki "validator agrees" (4 * 50 * 5) n
  | Error msg -> Alcotest.failf "multi-domain JSON invalid: %s" msg

(* --- validator and profile ------------------------------------------------ *)

let test_validator_rejects () =
  let is_error = function Error _ -> true | Ok _ -> false in
  checkb "garbage" true (is_error (Obs.Export.validate_chrome_json "not json"));
  checkb "missing traceEvents" true (is_error (Obs.Export.validate_chrome_json "{\"a\":1}"));
  checkb "traceEvents not an array" true
    (is_error (Obs.Export.validate_chrome_json "{\"traceEvents\":3}"));
  checkb "unbalanced begin" true
    (is_error
       (Obs.Export.validate_chrome_json
          "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0}]}"));
  checkb "unknown phase" true
    (is_error
       (Obs.Export.validate_chrome_json
          "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Z\",\"ts\":1,\"pid\":0,\"tid\":0}]}"));
  checkb "empty trace is valid" true
    (Obs.Export.validate_chrome_json "{\"traceEvents\":[]}" = Ok 0)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_text_profile () =
  let profile = Obs.Export.text_profile (Obs.Trace.events (scripted_trace ())) in
  checkb "root span" true (contains profile "bench.run");
  checkb "children indented" true (contains profile "  espresso.minimize");
  checkb "grandchildren indented" true (contains profile "    espresso.expand");
  (* espresso.minimize spans ts 1500..4500 — exactly 3.0us = 0.003 ms. *)
  checkb "totals in ms" true (contains profile "0.003")

let test_subsystems () =
  let subs = Obs.Export.subsystems (Obs.Trace.events (scripted_trace ())) in
  checkb "three subsystems" true (subs = [ "bench"; "espresso"; "sim" ])

let test_install_hooks () =
  checkb "disabled by default" false (Obs.Span.enabled ());
  checki "span passes through when disabled" 42 (Obs.Span.with_ "none" (fun () -> 42));
  Obs.Span.instant "ignored";
  let t = Obs.Trace.create ~clock:(Obs.Clock.fixed_step ()) () in
  Obs.Trace.install t;
  let r =
    Fun.protect ~finally:Obs.Trace.uninstall (fun () ->
        checkb "enabled once installed" true (Obs.Span.enabled ());
        Obs.Span.with_ "installed.span" (fun () ->
            Obs.Span.instant "installed.tick";
            7))
  in
  checki "result passes through" 7 r;
  checkb "uninstalled again" false (Obs.Span.enabled ());
  checki "events landed in the collector" 3 (List.length (Obs.Trace.events t))

let test_clock_monotonic () =
  let prev = ref 0L in
  for _ = 1 to 1000 do
    let now = Obs.Clock.monotonic () in
    checkb "monotonic never decreases" true (Int64.compare now !prev >= 0);
    prev := now
  done

let () =
  Alcotest.run "obs"
    [
      ( "golden",
        [
          Alcotest.test_case "chrome JSON matches golden file" `Quick test_golden_chrome_json;
          Alcotest.test_case "deterministic under domain noise" `Quick
            test_golden_deterministic_under_noise;
        ] );
      ( "events",
        [
          Alcotest.test_case "nesting depths and seq" `Quick test_nesting_depths;
          Alcotest.test_case "check rejects malformed traces" `Quick test_check_rejects_malformed;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "observer callback" `Quick test_observer_callback;
          Alcotest.test_case "multi-domain wellformedness" `Quick test_multi_domain_wellformed;
        ] );
      ( "export",
        [
          Alcotest.test_case "validator rejects bad JSON" `Quick test_validator_rejects;
          Alcotest.test_case "text profile" `Quick test_text_profile;
          Alcotest.test_case "subsystems" `Quick test_subsystems;
        ] );
      ( "runtime hooks",
        [
          Alcotest.test_case "install/uninstall" `Quick test_install_hooks;
          Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
        ] );
    ]
