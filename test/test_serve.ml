(* Tests for the evaluation service over the pipe transport: wire codec
   edges the property battery can't pin down, happy-path serving with
   oracle-checked outputs, deterministic queue-full shedding, tenant
   quota eviction accounting, a client dying mid-stream while another
   session keeps being served, and clean shutdown draining inflight
   work. No sockets — every session runs on Unix.pipe pairs. *)

module Wire = Serve.Wire
module Server = Serve.Server
module Admission = Serve.Admission
module Tenants = Serve.Tenants
module Pool = Runtime.Pool

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- transport harness ---------------------------------------------------- *)

type client = {
  ic : in_channel;  (* server -> client *)
  oc : out_channel;  (* client -> server *)
  thread : Thread.t;
}

(* Spawn one server session over two pipes; the returned client talks to
   it. [finish] closes the client side and joins the session thread. *)
let connect server =
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let sic = Unix.in_channel_of_descr c2s_r in
  let soc = Unix.out_channel_of_descr s2c_w in
  let thread =
    Thread.create
      (fun () ->
        Server.serve_session server sic soc;
        close_out_noerr soc;
        close_in_noerr sic)
      ()
  in
  { ic = Unix.in_channel_of_descr s2c_r; oc = Unix.out_channel_of_descr c2s_w; thread }

let finish c =
  close_out_noerr c.oc;
  Thread.join c.thread;
  close_in_noerr c.ic

let small_config =
  {
    Server.default_config with
    jobs = Some 2;
    queue_limit = 0;
    max_inflight = 1;
    max_tenants = 2;
    tenant_quota = 1;
    chunk_vectors = 4;
    max_batch = 64;
  }

let read_msg c =
  match Wire.read_message c.ic with
  | `Msg m -> m
  | `Eof -> Alcotest.fail "unexpected EOF from server"
  | `Error e -> Alcotest.fail ("unexpected decode error: " ^ Wire.error_to_string e)

(* Drive one eval request to completion, gathering streamed chunks. *)
let request c ~tenant ~program ~batch =
  Wire.write_message c.oc
    (Wire.Eval_request { tenant; program; batch = Wire.matrix_of_vectors batch });
  let rec gather acc =
    match read_msg c with
    | Wire.Result_chunk { first; outputs } -> gather ((first, outputs) :: acc)
    | Wire.Eval_done { total; cache_hit; _ } -> `Done (total, cache_hit, List.rev acc)
    | Wire.Overloaded _ -> `Shed
    | Wire.Error_response { code; message } -> `Error (code, message)
    | m -> Alcotest.fail ("unexpected reply: " ^ Wire.tag_name m)
  in
  gather []

(* Drive one classification request to completion; replies share the
   eval stream shape. *)
let classify_request c ~tenant ~model ~batch =
  Wire.write_message c.oc
    (Wire.Classify_request { tenant; model; batch = Wire.matrix_of_vectors batch });
  let rec gather acc =
    match read_msg c with
    | Wire.Result_chunk { first; outputs } -> gather ((first, outputs) :: acc)
    | Wire.Eval_done { total; cache_hit; _ } -> `Done (total, cache_hit, List.rev acc)
    | Wire.Overloaded _ -> `Shed
    | Wire.Error_response { code; message } -> `Error (code, message)
    | m -> Alcotest.fail ("unexpected reply: " ^ Wire.tag_name m)
  in
  gather []

let pla_text cover =
  let n_in = Logic.Cover.num_inputs cover in
  let n_out = Logic.Cover.num_outputs cover in
  Logic.Pla_io.to_string ~on_set:cover ~dc_set:(Logic.Cover.empty ~n_in ~n_out) ()

let all_vectors n = Array.init (1 lsl n) (fun m -> Runtime.Batch.minterm n m)

(* --- wire codec edges ----------------------------------------------------- *)

let test_wire_exact_roundtrip () =
  let msgs =
    [
      Wire.Eval_request
        {
          tenant = "t0";
          program = ".i 1\n.o 1\n1 1\n.e\n";
          batch = Wire.matrix_of_vectors [| [| true |]; [| false |] |];
        };
      Wire.Eval_request { tenant = ""; program = ""; batch = Wire.matrix_of_vectors [||] };
      Wire.Classify_request
        {
          tenant = "t1";
          model = "default";
          batch = Wire.matrix_of_vectors [| Array.init 8 (fun i -> i mod 3 = 0) |];
        };
      Wire.Classify_request { tenant = ""; model = ""; batch = Wire.matrix_of_vectors [||] };
      Wire.Ping;
      Wire.Result_chunk
        { first = 7; outputs = Wire.matrix_of_vectors [| [| true; false; true |] |] };
      (* width-0 rows still occupy one byte each on the wire *)
      Wire.Result_chunk
        { first = 0; outputs = Wire.matrix_of_vectors [| [||]; [||]; [||] |] };
      Wire.Eval_done { total = 12; cache_hit = true; eval_ns = 123456789L };
      Wire.Overloaded { queued = 3; inflight = 8 };
      Wire.Error_response { code = Wire.Parse_failed; message = "line 2: bad cube" };
      Wire.Pong;
    ]
  in
  List.iter
    (fun m ->
      let bytes = Wire.encode m in
      match Wire.decode bytes with
      | Ok (m', n) ->
        checkb ("roundtrip " ^ Wire.tag_name m) true (m = m');
        checki "consumed whole frame" (String.length bytes) n
      | Error e -> Alcotest.fail (Wire.error_to_string e))
    msgs

let test_wire_oversized_rejected_before_buffering () =
  let big =
    Wire.Eval_request
      { tenant = "t"; program = String.make 4096 '.'; batch = Wire.matrix_of_vectors [||] }
  in
  let bytes = Wire.encode big in
  match Wire.decode ~limit:64 bytes with
  | Error (Wire.Oversized { length; limit }) ->
    checkb "announced length" true (length > 64);
    checki "limit echoed" 64 limit
  | _ -> Alcotest.fail "expected Oversized"

let test_wire_garbage_is_typed_error () =
  (* every prefix of a valid frame, with every byte clobbered in turn:
     always a typed error or a clean parse, never an exception *)
  let bytes = Wire.encode (Wire.Overloaded { queued = 1; inflight = 2 }) in
  for cut = 0 to String.length bytes - 1 do
    match Wire.decode (String.sub bytes 0 cut) with
    | Error (Wire.Truncated _) -> ()
    | Ok _ | Error _ -> Alcotest.fail "truncation must decode as Truncated"
  done;
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    match Wire.decode (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
  done

let test_wire_forged_row_count_bounded () =
  (* A zero-width matrix claiming 2^32-1 rows in a 13-byte payload must
     die as Truncated before any allocation is sized from the claim —
     rows cost at least one byte each on the wire, so the bounds check
     caps the count even when the per-row bit payload is empty. *)
  let b = Buffer.create 32 in
  Buffer.add_int32_be b 13l (* payload length *);
  Buffer.add_uint8 b 0x43 (* magic *);
  Buffer.add_uint8 b Wire.version;
  Buffer.add_uint8 b 0x81 (* Result_chunk *);
  Buffer.add_int32_be b 0l (* first *);
  Buffer.add_int32_be b 0xFFFFFFFFl (* claimed rows *);
  Buffer.add_uint16_be b 0 (* width 0 *);
  match Wire.decode (Buffer.contents b) with
  | Error (Wire.Truncated _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "forged row count must decode as Truncated"

(* --- happy path ------------------------------------------------------------ *)

let test_happy_path () =
  let server = Server.create { small_config with max_inflight = 4; queue_limit = 8 } in
  let cover = Mcnc.Generators.gray ~bits:3 in
  let oracle = Cnfet.Pla.of_cover cover in
  let batch = all_vectors 3 in
  let c = connect server in
  Wire.write_message c.oc Wire.Ping;
  checkb "ping-pong" true (read_msg c = Wire.Pong);
  (match request c ~tenant:"alice" ~program:(pla_text cover) ~batch with
  | `Done (total, hit_first, chunks) ->
    checki "all vectors evaluated" (Array.length batch) total;
    checkb "first compile is a miss" false hit_first;
    (* chunking honoured and outputs bit-identical to direct Pla.eval *)
    checkb "chunked" true (List.length chunks > 1);
    List.iter
      (fun (first, outputs) ->
        for i = 0 to Wire.matrix_rows outputs - 1 do
          checkb "oracle match" true
            (Wire.matrix_row outputs i = Cnfet.Pla.eval oracle batch.(first + i))
        done)
      chunks
  | _ -> Alcotest.fail "expected Done");
  (match request c ~tenant:"alice" ~program:(pla_text cover) ~batch with
  | `Done (_, hit_second, _) -> checkb "second compile hits the tenant cache" true hit_second
  | _ -> Alcotest.fail "expected Done");
  finish c;
  Server.stop server;
  let s = Server.stats server in
  checki "no session errors" 0 s.Server.session_errors;
  checki "two ok responses" 2 s.Server.responses_ok

let test_classify_served_oracle () =
  (* Classification rides the same admission / cache / eval machinery;
     every served label must match Model.predict on the oracle side. *)
  let server = Server.create { small_config with max_inflight = 4; queue_limit = 8 } in
  let model = Classify.Pretrained.model in
  let batch =
    Array.init 32 (fun i -> fst (Classify.Dataset.sample Classify.Dataset.default ~seed:4242 i))
  in
  let c = connect server in
  (match classify_request c ~tenant:"alice" ~model:"default" ~batch with
  | `Done (total, hit_first, chunks) ->
    checki "all samples classified" (Array.length batch) total;
    checkb "first compile is a miss" false hit_first;
    List.iter
      (fun (first, outputs) ->
        for i = 0 to Wire.matrix_rows outputs - 1 do
          let expect =
            Classify.Model.encode_label model (Classify.Model.predict model batch.(first + i))
          in
          checkb "label matches Model.predict" true (Wire.matrix_row outputs i = expect)
        done)
      chunks
  | _ -> Alcotest.fail "expected Done");
  (match classify_request c ~tenant:"alice" ~model:"default" ~batch with
  | `Done (_, hit_second, _) ->
    checkb "second classify hits the tenant cache" true hit_second
  | _ -> Alcotest.fail "expected Done");
  (match classify_request c ~tenant:"alice" ~model:"nonesuch" ~batch with
  | `Error (Wire.Parse_failed, _) -> ()
  | _ -> Alcotest.fail "unknown model must answer Parse_failed");
  (match
     classify_request c ~tenant:"alice" ~model:"default" ~batch:[| [| true; false |] |]
   with
  | `Error (Wire.Arity_mismatch, _) -> ()
  | _ -> Alcotest.fail "feature-width mismatch must answer Arity_mismatch");
  finish c;
  Server.stop server;
  let s = Server.stats server in
  checki "no session errors" 0 s.Server.session_errors

let test_loadgen_classify_mix () =
  (* The generator mixes classification into the stream and live-checks
     every label against the Model.predict oracle: zero miscompares. *)
  let server =
    Server.create { Server.default_config with jobs = Some 2; queue_limit = 8; max_inflight = 4 }
  in
  let connect_pipe () =
    let c = connect server in
    (c.ic, c.oc, fun () -> finish c)
  in
  let cfg =
    {
      Serve.Loadgen.connect = connect_pipe;
      concurrency = 2;
      tenants = 2;
      requests_per_worker = 10;
      batch = 8;
      seed = 99;
      classify_share = 0.5;
    }
  in
  let r = Serve.Loadgen.run ~label:"mix" cfg in
  Server.stop server;
  checki "no miscompares" 0 r.Serve.Loadgen.miscompares;
  checki "no errors" 0 r.Serve.Loadgen.errors;
  checki "nothing shed at this depth" 0 r.Serve.Loadgen.shed;
  checkb "classification traffic present" true (r.Serve.Loadgen.classified > 0);
  checkb "eval traffic still present" true
    (r.Serve.Loadgen.completed > r.Serve.Loadgen.classified)

let test_request_errors_are_typed () =
  let server = Server.create small_config in
  let c = connect server in
  (match request c ~tenant:"t" ~program:"this is not a pla" ~batch:[||] with
  | `Error (Wire.Parse_failed, _) -> ()
  | _ -> Alcotest.fail "expected Parse_failed");
  let cover = Mcnc.Generators.xor_n 3 in
  (match request c ~tenant:"t" ~program:(pla_text cover) ~batch:[| [| true; false |] |] with
  | `Error (Wire.Arity_mismatch, _) -> ()
  | _ -> Alcotest.fail "expected Arity_mismatch");
  (match
     request c ~tenant:"t" ~program:(pla_text cover)
       ~batch:(Array.make 65 (Array.make 3 false))
   with
  | `Error (Wire.Batch_too_large, _) -> ()
  | _ -> Alcotest.fail "expected Batch_too_large");
  (* the session survived all three rejections *)
  (match request c ~tenant:"t" ~program:(pla_text cover) ~batch:(all_vectors 3) with
  | `Done _ -> ()
  | _ -> Alcotest.fail "expected Done after rejected requests");
  finish c;
  Server.stop server

(* --- admission control ------------------------------------------------------ *)

let test_queue_full_sheds_overloaded () =
  (* max_inflight 1, queue 0: occupy the only slot out-of-band, so the
     next request must shed — deterministically, no timing involved. *)
  let server = Server.create small_config in
  let adm = Server.admission server in
  checkb "slot taken out-of-band" true (Admission.admit adm = Admission.Admitted);
  let program = pla_text (Mcnc.Generators.xor_n 3) in
  let c = connect server in
  (match request c ~tenant:"t" ~program ~batch:(all_vectors 3) with
  | `Shed -> ()
  | _ -> Alcotest.fail "expected Overloaded while the slot is held");
  checki "shed metered" 1 (Admission.shed_total adm);
  Admission.release adm;
  (* slot free again: the same session is served normally *)
  (match request c ~tenant:"t" ~program ~batch:(all_vectors 3) with
  | `Done (total, _, _) -> checki "served after release" 8 total
  | _ -> Alcotest.fail "expected Done once the slot freed");
  finish c;
  Server.stop server

let test_clean_shutdown_drains_inflight () =
  let server = Server.create { small_config with max_inflight = 4 } in
  let pool = Server.pool server in
  let counter = Atomic.make 0 in
  let futs =
    List.init 8 (fun _ ->
        Pool.submit pool (fun () ->
            Thread.delay 0.005;
            Atomic.incr counter))
  in
  Server.stop server;
  checki "every inflight task finished before stop returned" 8 (Atomic.get counter);
  List.iter Pool.await futs;
  (* and admission is closed: everything after stop is shed, not queued *)
  match Admission.admit (Server.admission server) with
  | Admission.Shed _ -> ()
  | Admission.Admitted -> Alcotest.fail "admission must be closed after stop"

(* --- tenant quotas ----------------------------------------------------------- *)

let test_tenant_quota_entry_eviction () =
  (* quota 1: a tenant's second program evicts its first (metered by the
     tenant's own cache), and the other tenant's entry is untouched. *)
  let server = Server.create small_config in
  let tenants = Server.tenants server in
  let p1 = pla_text (Mcnc.Generators.xor_n 3) in
  let p2 = pla_text (Mcnc.Generators.majority 3) in
  let c = connect server in
  let eval ~tenant program =
    match request c ~tenant ~program ~batch:(all_vectors 3) with
    | `Done _ -> ()
    | _ -> Alcotest.fail "expected Done"
  in
  eval ~tenant:"alice" p1;
  eval ~tenant:"bob" p1;
  checki "no evictions yet" 0 (Tenants.entry_evictions tenants);
  eval ~tenant:"alice" p2;
  checki "alice's LRU entry evicted" 1 (Tenants.entry_evictions tenants);
  checki "no whole-tenant eviction" 0 (Tenants.tenant_evictions tenants);
  (* bob's cached entry survived alice's churn *)
  let bob_cache = Tenants.cache tenants "bob" in
  let hits0 = Runtime.Cache.hits bob_cache in
  eval ~tenant:"bob" p1;
  checkb "bob still hits his cache" true (Runtime.Cache.hits bob_cache > hits0);
  finish c;
  Server.stop server

let test_tenant_lru_eviction_metered () =
  (* max_tenants 2: a third tenant evicts the least-recently-used one,
     carrying its entry count into the meters. *)
  let tenants = Tenants.create ~max_tenants:2 ~quota:4 () in
  let touch name = ignore (Tenants.cache tenants name : Runtime.Cache.t) in
  touch "alice";
  touch "bob";
  touch "alice" (* bob is now LRU *);
  touch "carol";
  checki "one tenant evicted" 1 (Tenants.tenant_evictions tenants);
  checki "two tenants live" 2 (Tenants.tenant_count tenants);
  checkb "bob was the victim" true
    (List.for_all (fun (name, _) -> name <> "bob") (Tenants.stats tenants));
  checkb "alice survived" true
    (List.exists (fun (name, _) -> name = "alice") (Tenants.stats tenants))

(* --- session supervision ------------------------------------------------------ *)

let test_disconnect_leaves_other_sessions_alive () =
  let server = Server.create { small_config with max_inflight = 4 } in
  let cover = Mcnc.Generators.xor_n 3 in
  let healthy = connect server in
  (* victim dies mid-frame: half a header, then hangup *)
  let victim = connect server in
  output_string victim.oc "\x00\x00";
  finish victim;
  (* victim's death is metered as a session error, not a crash *)
  let rec wait_metered n =
    if n = 0 then Alcotest.fail "victim session never ended"
    else if (Server.stats server).Server.session_errors = 0 then begin
      Thread.delay 0.005;
      wait_metered (n - 1)
    end
  in
  wait_metered 200;
  (* and the healthy session still serves, bit-exact *)
  (match request healthy ~tenant:"t" ~program:(pla_text cover) ~batch:(all_vectors 3) with
  | `Done (total, _, _) -> checki "healthy session served" 8 total
  | _ -> Alcotest.fail "expected Done on the healthy session");
  (* a poison frame (valid framing, garbage inside) also stays contained *)
  let oversized = connect server in
  Wire.write_message oversized.oc
    (Wire.Eval_request
       {
         tenant = "t";
         program = String.make (Server.default_config.Server.max_frame / 1024) 'x';
         batch = Wire.matrix_of_vectors [||];
       });
  (match request healthy ~tenant:"t" ~program:(pla_text cover) ~batch:(all_vectors 3) with
  | `Done _ -> ()
  | _ -> Alcotest.fail "healthy session must survive a noisy neighbour");
  finish oversized;
  finish healthy;
  Server.stop server;
  checki "daemon survived: no worker crashes" 0 (Pool.crashes (Server.pool server))

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "exact roundtrip" `Quick test_wire_exact_roundtrip;
          Alcotest.test_case "oversized rejected" `Quick test_wire_oversized_rejected_before_buffering;
          Alcotest.test_case "mangled frames are typed errors" `Quick test_wire_garbage_is_typed_error;
          Alcotest.test_case "forged row count bounded" `Quick test_wire_forged_row_count_bounded;
        ] );
      ( "serving",
        [
          Alcotest.test_case "happy path, oracle-checked" `Quick test_happy_path;
          Alcotest.test_case "classification, oracle-checked" `Quick test_classify_served_oracle;
          Alcotest.test_case "loadgen classify mix, zero miscompares" `Quick
            test_loadgen_classify_mix;
          Alcotest.test_case "typed request errors" `Quick test_request_errors_are_typed;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue-full sheds Overloaded" `Quick test_queue_full_sheds_overloaded;
          Alcotest.test_case "clean shutdown drains inflight" `Quick
            test_clean_shutdown_drains_inflight;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "entry quota eviction metered" `Quick test_tenant_quota_entry_eviction;
          Alcotest.test_case "tenant LRU eviction metered" `Quick test_tenant_lru_eviction_metered;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "mid-stream disconnect contained" `Quick
            test_disconnect_leaves_other_sessions_alive;
        ] );
    ]
